"""On-disk sweep checkpoints for crash-resilient, resumable sweeps.

A long sweep that dies at point 180 of 200 — a worker segfault, an OOM
kill, a pre-empted batch job — should not recompute the 179 finished
points.  :class:`SweepCheckpoint` persists each completed point as one
pickle file named by the point's full configuration key (see
:func:`repro.sim.parallel.config_key`), so a re-run with the same
configuration reloads every finished point and only simulates the
remainder.  Because every point is deterministic in its configuration,
a resumed sweep is bit-identical to an uninterrupted one.

Durability properties:

- **Atomic writes.** Each result is pickled to a temporary file in the
  checkpoint directory and moved into place with :func:`os.replace`,
  so a crash mid-write never leaves a truncated checkpoint under the
  final name.
- **Corruption tolerance.** A checkpoint that fails to unpickle (e.g.
  a stray partial file from a hard power loss) is deleted and treated
  as a miss — the point is simply recomputed.
- **Keyed by content, not position.** Files are named by the config
  key, so reordering the sweep grid, changing its size, or sharing one
  directory between overlapping sweeps all resume correctly.

Checkpoints store full :class:`~repro.sim.results.SimulationResult`
objects and are only meant to be read back by the same code version
that wrote them.  Each point may carry a ``<key>.manifest.json``
provenance sidecar (a :class:`~repro.obs.manifest.RunManifest`): the
full recipe — parameters, topology, fault schedule, package version,
result fingerprint — from which the point can be re-run and verified
independently of the pickle.  The manifest doubles as the version
guard: a checkpoint whose sidecar was written by a different package
version is dropped and recomputed instead of silently deserialising
stale state.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import Optional

from ..errors import CheckpointCorruptionError, SimulationError
from .results import SimulationResult

#: Suffix of finished-point files inside a checkpoint directory.
CHECKPOINT_SUFFIX = ".ckpt.pkl"


class SweepCheckpoint:
    """A directory of per-point sweep checkpoints.

    Attributes:
        directory: Where point files live (created on first use).
        expected_type: The class every checkpointed payload must be an
            instance of (:class:`~repro.sim.results.SimulationResult`
            for sweep points; the fleet layer stores chassis snapshots
            in the same container).
        loads: Points answered from disk so far.
        saves: Points persisted to disk so far.
        dropped: Corrupt files deleted and recomputed.
    """

    def __init__(self, directory, expected_type: type = SimulationResult):
        self.directory = Path(directory)
        if self.directory.exists() and not self.directory.is_dir():
            raise SimulationError(
                f"checkpoint path {self.directory} is not a directory"
            )
        self.expected_type = expected_type
        self.loads = 0
        self.saves = 0
        self.dropped = 0

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}{CHECKPOINT_SUFFIX}"

    def manifest_path(self, key: str) -> Path:
        """Where the point's provenance sidecar lives (if written)."""
        from ..obs.manifest import MANIFEST_SUFFIX

        return self.directory / f"{key}{MANIFEST_SUFFIX}"

    def load_manifest(self, key: str):
        """The point's :class:`~repro.obs.manifest.RunManifest`, if any.

        Returns ``None`` when no sidecar exists.  Raises
        :class:`~repro.errors.ObservabilityError` for a sidecar that
        exists but is malformed.
        """
        from ..obs.manifest import RunManifest

        path = self.manifest_path(key)
        if not path.exists():
            return None
        return RunManifest.read(path)

    def _drop(self, key: str) -> None:
        """Delete a poisoned point (checkpoint and sidecar) quietly."""
        self.dropped += 1
        for path in (self._path(key), self.manifest_path(key)):
            try:
                path.unlink()
            except OSError:  # pragma: no cover - unlink race
                pass

    def _read(self, key: str):
        """Load and verify one checkpoint, raising on anything suspect.

        Raises:
            CheckpointCorruptionError: naming the offending file, for a
                checkpoint that fails to unpickle, holds the wrong
                payload type, carries a malformed manifest sidecar, or
                was written by an incompatible package version.
        """
        path = self._path(key)
        if not path.exists():
            return None
        try:
            with open(path, "rb") as handle:
                result = pickle.load(handle)
        except Exception as exc:
            raise CheckpointCorruptionError(
                path, f"unpickling failed ({type(exc).__name__}: {exc})"
            ) from exc
        if not isinstance(result, self.expected_type):
            raise CheckpointCorruptionError(
                path,
                f"expected a {self.expected_type.__name__} payload, "
                f"got {type(result).__name__}",
            )
        # Version guard: a sidecar from another package version marks
        # the pickle as written by incompatible code.
        from ..errors import ObservabilityError

        try:
            manifest = self.load_manifest(key)
        except ObservabilityError as exc:
            raise CheckpointCorruptionError(
                self.manifest_path(key), str(exc)
            ) from exc
        if manifest is not None and not manifest.version_compatible:
            raise CheckpointCorruptionError(
                path,
                "manifest sidecar was written by an incompatible "
                "package version",
            )
        return result

    def load(self, key: str) -> Optional[SimulationResult]:
        """The checkpointed result for ``key``, or ``None``.

        A file that exists but cannot be unpickled — or whose manifest
        sidecar is malformed or was written by a different package
        version — is deleted and reported as a miss, so a half-written
        or stale checkpoint can never poison a sweep.  Use
        :meth:`load_strict` to surface the corruption instead.
        """
        try:
            result = self._read(key)
        except CheckpointCorruptionError:
            self._drop(key)
            return None
        if result is not None:
            self.loads += 1
        return result

    def load_strict(self, key: str) -> Optional[SimulationResult]:
        """Like :meth:`load`, but corruption raises instead of hiding.

        A missing checkpoint still returns ``None`` (a cold start is
        normal).  A checkpoint that exists but cannot be trusted raises
        :class:`~repro.errors.CheckpointCorruptionError` naming the
        offending path — after deleting the poisoned files, so the
        *next* recovery attempt starts cold instead of tripping over
        the same corpse.  The fleet supervisor maps this error to a
        cold restart rather than crashing.
        """
        try:
            result = self._read(key)
        except CheckpointCorruptionError:
            self._drop(key)
            raise
        if result is not None:
            self.loads += 1
        return result

    def save(self, key: str, result: SimulationResult, manifest=None) -> None:
        """Persist one finished point atomically.

        The pickle is written to a temporary file in the same directory
        and renamed over the final path, so readers only ever see
        complete checkpoints.  An optional
        :class:`~repro.obs.manifest.RunManifest` is written (also
        atomically) as the point's ``.manifest.json`` sidecar.

        Raises:
            SimulationError: if the checkpoint directory or files
                cannot be written.
        """
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                prefix=".tmp-",
                suffix=CHECKPOINT_SUFFIX,
                dir=self.directory,
            )
        except OSError as exc:
            raise SimulationError(
                f"cannot write checkpoints under {self.directory}: {exc}"
            ) from exc
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(result, handle, pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        if manifest is not None:
            manifest.save(self.manifest_path(key))
        self.saves += 1

    def __len__(self) -> int:
        """Number of finished points currently on disk."""
        if not self.directory.is_dir():
            return 0
        return sum(
            1
            for name in os.listdir(self.directory)
            if name.endswith(CHECKPOINT_SUFFIX)
            and not name.startswith(".tmp-")
        )

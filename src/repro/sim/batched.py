"""Batched fleet-tensor sweep evaluation over a shared topology.

Capacity-planning sweeps ask the same decision-free questions at many
operating points of one server: "at utilisation u and per-socket
dynamic power P, where does the steady thermal field settle, which
DVFS state survives it, and how far along is the transient after a
cold-start window?".  The per-point path answers each question with a
fresh set of ``(n,)`` kernel calls; this module stacks ``N`` such
points into leading-axis ``(N, n)`` fleet tensors and evaluates every
point per kernel call instead.

The evaluator runs on the array-backend seam (``repro.backend``):

- Under the default numpy backend the stacked math is **bit-identical**
  to the per-point serial path (:func:`evaluate_fleet_serial`), because
  every kernel is elementwise over the socket axis and the one
  exception — the coupling matrix–vector product, whose BLAS kernel
  (dgemv vs dgemm) may round differently when batched — is deliberately
  evaluated one point at a time through the exact serial entry point.
- Under the optional JAX backend the steady fixed point is a single
  ``jit``-ed, ``vmap``-ed kernel over the point axis; results are
  epsilon-bounded against numpy (see ``tests/test_batched_sweep.py``).

Only decision-free math batches this way: scheduler placement decisions
depend on job identity and history, so the full engine keeps its serial
per-point form (see :mod:`repro.sim.parallel` for process-level
parallelism there).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..backend import ArrayBackend, get_backend
from ..backend import numpy_xp as np
from ..config.parameters import SimulationParameters
from ..errors import SimulationError
from ..server.topology import ServerTopology
from ..thermal.dynamics import TwoNodeThermalState, advance_window_modes
from ..workloads.power_model import leakage_power
from .power_manager import select_frequencies_steady
from .steady_state import (
    LEAKAGE_ITERATIONS,
    SteadyStateField,
    solve_steady_state,
)


@dataclass(frozen=True)
class FleetPoint:
    """One decision-free sweep point over the shared topology.

    Attributes:
        utilization: Uniform per-socket busy fraction in [0, 1].
        dyn_max_w: Per-socket dynamic power while busy, W.
        dyn_exp: Dynamic power exponent for the DVFS selection step
            (workload dependent; see
            :func:`repro.sim.power_manager.dynamic_power`).
        inlet_c: Optional inlet-air override, degC; ``None`` uses the
            sweep's shared ``params.inlet_c``.
    """

    utilization: float
    dyn_max_w: float
    dyn_exp: float = 2.0
    inlet_c: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.utilization <= 1.0:
            raise SimulationError("utilisation must lie in [0, 1]")
        if self.dyn_max_w < 0:
            raise SimulationError("dynamic power must be non-negative")
        if self.dyn_exp <= 0:
            raise SimulationError("dynamic exponent must be positive")


@dataclass(frozen=True)
class FleetSweepResult:
    """Stacked ``(N, n)`` results for a batch of fleet points.

    All arrays are host numpy (converted from the evaluating backend),
    with the point axis leading and aligned with the input sequence.

    Attributes:
        power_w: Steady per-socket total power, W.
        ambient_c: Steady entry air temperatures, degC.
        sink_c: Steady heat-sink temperatures, degC.
        chip_c: Steady chip temperatures, degC.
        freq_mhz: Steady-state DVFS selection per socket, MHz.
        window_sink_c: Sink temperatures after ``window_steps`` decayed
            steps from inlet equilibrium under the frozen steady field.
        window_chip_c: Chip temperatures after the same window.
    """

    power_w: np.ndarray
    ambient_c: np.ndarray
    sink_c: np.ndarray
    chip_c: np.ndarray
    freq_mhz: np.ndarray
    window_sink_c: np.ndarray
    window_chip_c: np.ndarray

    @property
    def n_points(self) -> int:
        """Number of sweep points in the batch."""
        return self.power_w.shape[0]

    def field(self, index: int) -> SteadyStateField:
        """The steady field of one point, as the per-point dataclass."""
        return SteadyStateField(
            power_w=self.power_w[index],
            ambient_c=self.ambient_c[index],
            sink_c=self.sink_c[index],
            chip_c=self.chip_c[index],
        )


def _point_params(
    params: SimulationParameters, point: FleetPoint
) -> SimulationParameters:
    """The shared parameters with the point's inlet override applied."""
    if point.inlet_c is None:
        return params
    return dataclasses.replace(params, inlet_c=float(point.inlet_c))


def _decays(params: SimulationParameters) -> tuple:
    """Per-step decay factors at the engine's power-manager cadence."""
    dt = params.power_manager_interval_s
    return (
        float(np.exp(-dt / params.socket_tau_s)),
        float(np.exp(-dt / params.chip_tau_s)),
    )


def evaluate_fleet_serial(
    topology: ServerTopology,
    params: SimulationParameters,
    points: Sequence[FleetPoint],
    window_steps: int = 0,
) -> FleetSweepResult:
    """Per-point reference evaluation through the serial kernels.

    Runs each point independently through the exact historical entry
    points (:func:`~repro.sim.steady_state.solve_steady_state`, the
    steady DVFS selector, the closed-form window advance) and stacks
    the results.  :func:`evaluate_fleet` under the numpy backend must
    match this bit for bit — it is the batched evaluator's oracle.
    """
    if not points:
        raise SimulationError("fleet sweep needs at least one point")
    n = topology.n_sockets
    ladder = topology.processor.ladder
    tdp = topology.tdp_array
    r_ext = topology.r_ext_array
    theta_off = topology.theta_offset_array
    theta_slope = topology.theta_slope_array
    sink_decay, chip_decay = _decays(params)

    fields: List[SteadyStateField] = []
    freqs: List[np.ndarray] = []
    window_sink: List[np.ndarray] = []
    window_chip: List[np.ndarray] = []
    for point in points:
        p = _point_params(params, point)
        field = solve_steady_state(
            topology,
            p,
            np.full(n, point.dyn_max_w),
            np.full(n, point.utilization),
        )
        fields.append(field)
        freqs.append(
            select_frequencies_steady(
                ambient_c=field.ambient_c,
                chip_c=field.chip_c,
                dyn_max_w=np.full(n, point.dyn_max_w),
                dyn_exp=np.full(n, point.dyn_exp),
                tdp_w=tdp,
                r_ext=r_ext,
                theta_offset=theta_off,
                theta_slope=theta_slope,
                ladder=ladder,
                params=p,
            )
        )
        state = TwoNodeThermalState.at_ambient(
            n,
            p.inlet_c,
            chip_tau_s=p.chip_tau_s,
            socket_tau_s=p.socket_tau_s,
        )
        theta = theta_off + theta_slope * field.power_w
        state.advance_window(
            sink_decay,
            chip_decay,
            window_steps,
            field.ambient_c,
            field.power_w,
            p.r_int,
            r_ext,
            theta,
        )
        window_sink.append(state.sink_c)
        window_chip.append(state.chip_c)
    return FleetSweepResult(
        power_w=np.stack([f.power_w for f in fields]),
        ambient_c=np.stack([f.ambient_c for f in fields]),
        sink_c=np.stack([f.sink_c for f in fields]),
        chip_c=np.stack([f.chip_c for f in fields]),
        freq_mhz=np.stack(freqs),
        window_sink_c=np.stack(window_sink),
        window_chip_c=np.stack(window_chip),
    )


def _steady_fleet_numpy(
    topology: ServerTopology,
    params: SimulationParameters,
    util: np.ndarray,
    dynamic: np.ndarray,
    inlet: np.ndarray,
) -> tuple:
    """Stacked steady fixed point, bit-identical to the serial solver.

    Every operation is elementwise over the trailing socket axis in the
    exact order of :func:`~repro.sim.steady_state.solve_steady_state`,
    so each ``(N, n)`` element sees the identical float sequence as its
    ``(n,)`` serial counterpart.  The one matrix–vector product goes
    through :meth:`~repro.thermal.coupling.CouplingModel.
    entry_temperatures` one point at a time: a stacked ``(N, n)``
    product would hit a different BLAS kernel (dgemm vs dgemv) whose
    reduction order is not guaranteed to match.
    """
    tdp = topology.tdp_array
    gated = topology.gated_power_array
    r_ext = topology.r_ext_array
    theta_off = topology.theta_offset_array
    theta_slope = topology.theta_slope_array
    coupling = topology.coupling

    chip = np.full(util.shape, 60.0)
    power = np.broadcast_to(gated, util.shape)
    ambient = sink = None
    for _ in range(LEAKAGE_ITERATIONS):
        leak = leakage_power(chip, 1.0) * tdp
        busy_power = dynamic + leak
        power = util * busy_power + (1.0 - util) * gated
        ambient = np.stack(
            [
                coupling.entry_temperatures(float(inlet[i]), power[i])
                for i in range(power.shape[0])
            ]
        )
        sink = ambient + power * r_ext
        theta = theta_off + theta_slope * power
        chip = sink + power * params.r_int + theta
    return power, ambient, sink, chip


def _steady_fleet_vmapped(
    topology: ServerTopology,
    params: SimulationParameters,
    util: np.ndarray,
    dynamic: np.ndarray,
    inlet: np.ndarray,
    backend: ArrayBackend,
) -> tuple:
    """Steady fixed point as one jitted, vmapped kernel (JAX path).

    The per-point solver is written against ``backend.xp`` and mapped
    over the leading point axis; the coupling product is a plain
    ``matrix @ power`` inside the traced function, so the whole batch
    evaluates in a single fused kernel call.
    """
    xp = backend.xp
    tdp = backend.asarray(topology.tdp_array)
    gated = backend.asarray(topology.gated_power_array)
    r_ext = backend.asarray(topology.r_ext_array)
    theta_off = backend.asarray(topology.theta_offset_array)
    theta_slope = backend.asarray(topology.theta_slope_array)
    matrix = backend.asarray(topology.coupling.matrix)
    r_int = params.r_int
    n = topology.n_sockets

    def solve_point(util_i, dyn_i, inlet_i):
        chip = xp.full((n,), 60.0)
        power = gated
        ambient = xp.full((n,), inlet_i)
        sink = ambient
        for _ in range(LEAKAGE_ITERATIONS):
            leak = leakage_power(chip, 1.0, xp=xp) * tdp
            busy_power = dyn_i + leak
            power = util_i * busy_power + (1.0 - util_i) * gated
            ambient = inlet_i + matrix @ power
            sink = ambient + power * r_ext
            theta = theta_off + theta_slope * power
            chip = sink + power * r_int + theta
        return power, ambient, sink, chip

    solve = backend.jit(backend.vmap(solve_point))
    return solve(
        backend.asarray(util),
        backend.asarray(dynamic),
        backend.asarray(inlet),
    )


def evaluate_fleet(
    topology: ServerTopology,
    params: SimulationParameters,
    points: Sequence[FleetPoint],
    window_steps: int = 0,
    backend=None,
) -> FleetSweepResult:
    """Evaluate a batch of fleet points with stacked kernel calls.

    Args:
        topology: The shared server geometry.
        params: Shared simulation parameters; per-point ``inlet_c``
            overrides apply on top.
        points: The sweep points; all evaluate in one pass.
        window_steps: Decayed engine steps of cold-start transient to
            advance (0 reports the inlet-equilibrium start state).
        backend: Array backend — a name from
            :data:`repro.backend.BACKEND_NAMES`, an
            :class:`~repro.backend.ArrayBackend`, or ``None``
            (``REPRO_BACKEND``/numpy).  numpy is bit-identical to
            :func:`evaluate_fleet_serial`; JAX is epsilon-bounded and
            evaluates the steady solve as one vmapped kernel.

    Returns:
        The stacked :class:`FleetSweepResult` (host numpy arrays).
    """
    if not points:
        raise SimulationError("fleet sweep needs at least one point")
    backend = get_backend(backend)
    n = topology.n_sockets
    n_points = len(points)
    ladder = topology.processor.ladder

    util = np.stack(
        [np.full(n, point.utilization) for point in points]
    )
    dynamic = np.stack(
        [np.full(n, point.dyn_max_w) for point in points]
    )
    dyn_exp = np.stack(
        [np.full(n, point.dyn_exp) for point in points]
    )
    inlet = np.array(
        [
            params.inlet_c if point.inlet_c is None else float(point.inlet_c)
            for point in points
        ]
    )

    if backend.name == "numpy":
        power, ambient, sink, chip = _steady_fleet_numpy(
            topology, params, util, dynamic, inlet
        )
    else:
        util_scalar = np.array([point.utilization for point in points])
        dyn_scalar = np.array([point.dyn_max_w for point in points])
        power, ambient, sink, chip = _steady_fleet_vmapped(
            topology, params, util_scalar, dyn_scalar, inlet, backend
        )

    # DVFS selection is elementwise per socket column, so the stacked
    # batch flattens to one (N * n,) call — bit-identical per element
    # to N separate (n,) calls (see select_frequencies_steady).
    flat = (n_points * n,)
    freq = select_frequencies_steady(
        ambient_c=ambient.reshape(flat),
        chip_c=chip.reshape(flat),
        dyn_max_w=backend.asarray(dynamic).reshape(flat),
        dyn_exp=backend.asarray(dyn_exp).reshape(flat),
        tdp_w=backend.asarray(np.tile(topology.tdp_array, n_points)),
        r_ext=backend.asarray(np.tile(topology.r_ext_array, n_points)),
        theta_offset=backend.asarray(
            np.tile(topology.theta_offset_array, n_points)
        ),
        theta_slope=backend.asarray(
            np.tile(topology.theta_slope_array, n_points)
        ),
        ladder=ladder,
        params=params,
        backend=backend,
    ).reshape((n_points, n))

    # Cold-start transient: both nodes start at the point's inlet
    # equilibrium and advance under the frozen steady field, exactly as
    # TwoNodeThermalState.advance_window does per point.
    xp = backend.xp
    start = xp.broadcast_to(
        backend.asarray(inlet)[:, None], (n_points, n)
    )
    theta = backend.asarray(topology.theta_offset_array) + (
        backend.asarray(topology.theta_slope_array) * power
    )
    sink_decay, chip_decay = _decays(params)
    window_sink, window_chip, _ = advance_window_modes(
        start,
        start,
        sink_decay,
        chip_decay,
        window_steps,
        ambient,
        power,
        params.r_int,
        backend.asarray(topology.r_ext_array),
        theta,
    )
    return FleetSweepResult(
        power_w=backend.to_numpy(power),
        ambient_c=backend.to_numpy(ambient),
        sink_c=backend.to_numpy(sink),
        chip_c=backend.to_numpy(chip),
        freq_mhz=backend.to_numpy(freq),
        window_sink_c=backend.to_numpy(window_sink),
        window_chip_c=backend.to_numpy(window_chip),
    )

"""Vectorised simulation state shared with scheduling policies.

Schedulers receive the :class:`SimulationState` at every decision; it
exposes read access to per-socket arrays (temperatures, frequencies,
busy flags, job power parameters) plus the topology and its coupling
matrix.  Policies must treat the arrays as read-only — the engine owns
all mutation.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..config.parameters import SimulationParameters
from ..errors import SimulationError
from ..server.topology import ServerTopology
from ..thermal.dynamics import TwoNodeThermalState
from ..workloads.benchmark import profile_for
from ..workloads.job import Job
from ..workloads.power_model import LEAKAGE_TDP_FRACTION


class SimulationState:
    """Mutable engine state over a fixed topology.

    Attributes:
        topology: Server geometry and coupling.
        params: Simulation parameters.
        time_s: Current simulation time, seconds.
        busy: Per-socket busy flags.
        freq_mhz: Per-socket current frequency (meaningful while busy).
        remaining_work_ms: Work left on the running job, ms.
        dyn_max_w: Dynamic power of the running job at the top
            frequency, W (0 while idle).
        dyn_exp: Dynamic power exponent of the running job (1 while
            idle).
        perf_drop: Performance drop at the bottom of the ladder for the
            running job's set (0 while idle).
        power_w: Socket power drawn during the last step, W.
        ambient_c: Entry air temperature per socket, degC.
        history_c: Exponentially smoothed chip temperature, degC
            (A-Random's temperature history).
        busy_ema: Exponentially smoothed per-socket busy indicator —
            the recent utilisation of each socket, used by CP to weight
            predicted downwind losses by the probability they are
            realised.
        thermal: Two-node transient thermal state (chip + sink nodes).
        running_jobs: The job each socket is executing (None while idle).
    """

    def __init__(
        self, topology: ServerTopology, params: SimulationParameters
    ):
        self.topology = topology
        self.params = params
        n = topology.n_sockets
        self.time_s = 0.0
        self.busy = np.zeros(n, dtype=bool)
        self.freq_mhz = np.full(
            n, float(topology.processor.ladder.min_mhz)
        )
        self.remaining_work_ms = np.zeros(n)
        self.dyn_max_w = np.zeros(n)
        self.dyn_exp = np.ones(n)
        self.perf_drop = np.zeros(n)
        self.power_w = topology.gated_power_array.copy()
        self.ambient_c = np.full(n, params.inlet_c)
        self.history_c = np.full(n, params.inlet_c)
        self.busy_ema = np.zeros(n)
        self.thermal = TwoNodeThermalState.at_ambient(
            n,
            params.inlet_c,
            chip_tau_s=params.chip_tau_s,
            socket_tau_s=params.socket_tau_s,
        )
        self.running_jobs: List[Optional[Job]] = [None] * n

    @property
    def n_sockets(self) -> int:
        """Socket count."""
        return self.topology.n_sockets

    @property
    def chip_c(self) -> np.ndarray:
        """Current chip temperatures, degC."""
        return self.thermal.chip_c

    @property
    def sink_c(self) -> np.ndarray:
        """Current heat-sink temperatures, degC."""
        return self.thermal.sink_c

    @property
    def ladder(self):
        """The DVFS ladder shared by every socket."""
        return self.topology.processor.ladder

    def idle_socket_ids(self) -> np.ndarray:
        """Indices of sockets with no running job."""
        return np.nonzero(~self.busy)[0]

    def assign(self, job: Job, socket_id: int) -> None:
        """Place ``job`` on an idle socket.

        Raises:
            SimulationError: if the socket is out of range or busy.
        """
        if not 0 <= socket_id < self.n_sockets:
            raise SimulationError(
                f"socket {socket_id} out of range 0..{self.n_sockets - 1}"
            )
        if self.busy[socket_id]:
            raise SimulationError(
                f"scheduler placed job {job.job_id} on busy socket "
                f"{socket_id}"
            )
        profile = profile_for(job.app.benchmark_set)
        tdp = self.topology.tdp_array[socket_id]
        self.busy[socket_id] = True
        self.remaining_work_ms[socket_id] = job.work_ms
        self.dyn_max_w[socket_id] = (
            job.app.power_at_max_w - LEAKAGE_TDP_FRACTION * tdp
        )
        self.dyn_exp[socket_id] = profile.dynamic_exponent
        self.perf_drop[socket_id] = profile.perf_drop_at_min
        self.running_jobs[socket_id] = job
        job.socket_id = socket_id
        job.start_s = self.time_s

    def migrate(
        self, source: int, destination: int, cost_ms: float = 0.0
    ) -> None:
        """Move the running job from ``source`` to an idle socket.

        The job keeps its identity and start time; ``cost_ms`` of extra
        work models the state-transfer penalty.

        Raises:
            SimulationError: if ``source`` is idle, ``destination`` is
                busy, or either index is out of range.
        """
        for socket_id in (source, destination):
            if not 0 <= socket_id < self.n_sockets:
                raise SimulationError(
                    f"socket {socket_id} out of range "
                    f"0..{self.n_sockets - 1}"
                )
        if not self.busy[source]:
            raise SimulationError(
                f"migration source {source} has no running job"
            )
        if self.busy[destination]:
            raise SimulationError(
                f"migration destination {destination} is busy"
            )
        if cost_ms < 0:
            raise SimulationError("migration cost must be non-negative")
        job = self.running_jobs[source]
        self.busy[destination] = True
        self.remaining_work_ms[destination] = (
            self.remaining_work_ms[source] + cost_ms
        )
        self.dyn_max_w[destination] = self.dyn_max_w[source]
        self.dyn_exp[destination] = self.dyn_exp[source]
        self.perf_drop[destination] = self.perf_drop[source]
        self.running_jobs[destination] = job
        job.socket_id = destination

        self.busy[source] = False
        self.remaining_work_ms[source] = 0.0
        self.dyn_max_w[source] = 0.0
        self.dyn_exp[source] = 1.0
        self.perf_drop[source] = 0.0
        self.running_jobs[source] = None

    def release(self, socket_id: int) -> Job:
        """Free a socket after its job completed; returns the job."""
        job = self.running_jobs[socket_id]
        if job is None:
            raise SimulationError(f"socket {socket_id} has no running job")
        self.busy[socket_id] = False
        self.remaining_work_ms[socket_id] = 0.0
        self.dyn_max_w[socket_id] = 0.0
        self.dyn_exp[socket_id] = 1.0
        self.perf_drop[socket_id] = 0.0
        self.running_jobs[socket_id] = None
        return job

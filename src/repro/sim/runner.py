"""Convenience entry points for running simulations and sweeps."""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from ..config.parameters import SimulationParameters
from ..server.topology import ServerTopology
from ..workloads.arrivals import ArrivalProcess
from ..workloads.benchmark import BenchmarkSet
from .engine import Simulation
from .invariants import DEFAULT_INTERVAL_STEPS
from .results import SimulationResult


def run_once(
    topology: ServerTopology,
    params: SimulationParameters,
    scheduler,
    benchmark_set: BenchmarkSet,
    load: float,
    auditor=None,
    fault_schedule=None,
    telemetry=None,
    profile: bool = False,
    run_name: str = "run",
    stepping: str = "fixed",
    multirate=None,
    backend=None,
) -> SimulationResult:
    """Run one (scheduler, benchmark set, load) configuration.

    The job stream is generated from the parameters' seed, so every
    scheduler evaluated with the same ``params`` sees the *identical*
    workload — the paper's comparison methodology.

    Args:
        topology: Server geometry.
        params: Simulation parameters (the seed fixes the workload).
        scheduler: Placement policy instance.
        benchmark_set: Workload set to draw jobs from.
        load: Offered load in (0, 1].
        auditor: Optional fresh :class:`~repro.sim.invariants.
            InvariantAuditor` checking physical invariants during the
            run.
        fault_schedule: Optional :class:`~repro.faults.schedule.
            FaultSchedule` replayed deterministically during the run.
        telemetry: Optional :class:`~repro.obs.session.TelemetryConfig`
            (or bare directory): record a structured JSONL event log
            plus a ``.manifest.json`` provenance record for the run.
            Strictly observational — results stay bit-identical.
        profile: Attach per-component wall-clock accounting to
            ``result.profile`` (implied by ``telemetry.profile``).
        run_name: Base name for the run's telemetry artifacts.
        stepping: ``"fixed"`` (default) or ``"adaptive"`` — see
            :class:`repro.sim.multirate.MultiRateEngine`.
        multirate: Optional :class:`repro.sim.multirate.
            MultiRateConfig` for the adaptive driver.
        backend: Array backend for the seam-managed kernels — a name
            from :data:`repro.backend.BACKEND_NAMES`, an
            :class:`~repro.backend.ArrayBackend` instance, or ``None``
            (consult ``REPRO_BACKEND``, default numpy).
    """
    arrivals = ArrivalProcess(
        benchmark_set=benchmark_set,
        load=load,
        n_sockets=topology.n_sockets,
        seed=params.seed,
        duration_scale=params.duration_scale,
    )
    jobs = arrivals.generate(params.sim_time_s)
    simulation = Simulation(
        topology,
        params,
        scheduler,
        auditor=auditor,
        fault_schedule=fault_schedule,
        telemetry=telemetry,
        profile=profile,
        run_name=run_name,
        stepping=stepping,
        multirate=multirate,
        backend=backend,
    )
    result = simulation.run(jobs)
    if simulation.telemetry is not None:
        from pathlib import Path

        from ..obs.manifest import manifest_for_point

        manifest = manifest_for_point(
            topology,
            params,
            getattr(scheduler, "name", "unknown"),
            benchmark_set,
            load,
            fault_schedule=fault_schedule,
            result=result,
            profile=result.profile,
            stepping=stepping,
        )
        manifest.save(
            Path(simulation.telemetry.directory)
            / f"{run_name}.manifest.json"
        )
    return result


def run_sweep(
    topology: ServerTopology,
    params: SimulationParameters,
    scheduler_names: Sequence[str],
    benchmark_sets: Sequence[BenchmarkSet],
    loads: Sequence[float],
    max_workers: int = 1,
    audit: bool = False,
    audit_interval: int = DEFAULT_INTERVAL_STEPS,
    use_cache: bool = False,
    cache=None,
    fault_schedule=None,
    timeout_s=None,
    max_retries: int = 2,
    retry_backoff_s: float = 0.25,
    checkpoint_dir=None,
    telemetry=None,
    profile: bool = False,
    stepping: str = "fixed",
    multirate=None,
    backend=None,
) -> Dict[Tuple[str, BenchmarkSet, float], SimulationResult]:
    """Run the full cross product of schedulers, sets and loads.

    Each grid point is an independent simulation whose workload derives
    only from ``params.seed``, so the sweep parallelises without
    changing a single bit of any result: ``max_workers=4`` returns
    metrics identical to the serial path (see
    :mod:`repro.sim.parallel`).

    Args:
        topology: Server geometry shared by every point.
        params: Simulation parameters shared by every point.
        scheduler_names: Registered policy names to evaluate.
        benchmark_sets: Workload sets to evaluate.
        loads: Load levels in (0, 1].
        max_workers: Simulations to run concurrently; ``1`` (default)
            keeps the classic serial loop.
        audit: Run every point under a fresh
            :class:`~repro.sim.invariants.InvariantAuditor`.
        audit_interval: Audit cadence in engine steps.
        use_cache: Memoise results in the process-wide
            :data:`repro.sim.parallel.shared_cache` so repeated sweeps
            over identical configurations skip the simulation.
        cache: Explicit :class:`~repro.sim.parallel.SweepCache`
            overriding ``use_cache``.
        fault_schedule: Optional :class:`~repro.faults.schedule.
            FaultSchedule` replayed deterministically in *every* grid
            point (it also joins the cache/checkpoint key).
        timeout_s: Optional per-point wall-clock bound in the parallel
            path (see :func:`~repro.sim.parallel.execute_sweep`).
        max_retries: Pool rounds re-attempted after worker crashes
            before the leftover points fall back to serial execution.
        retry_backoff_s: Base of the exponential sleep between retry
            rounds.
        checkpoint_dir: Optional directory; every finished point is
            persisted there immediately (atomic per-point pickles with
            ``.manifest.json`` provenance sidecars), and a re-run with
            the same configuration resumes bit-identically from
            whatever completed.
        telemetry: Optional :class:`~repro.obs.session.TelemetryConfig`
            (or bare directory): record a sweep-level ``sweep.jsonl``
            harness log plus one per-point event log and manifest.
        profile: Attach per-component wall-clock accounting to every
            point's ``result.profile``.
        stepping: ``"fixed"`` (default) or ``"adaptive"`` — engine
            stepping mode applied to every point (see
            :class:`~repro.sim.multirate.MultiRateEngine`).  A
            non-default mode joins the cache/checkpoint key, so
            adaptive results never alias fixed ones.
        multirate: Optional :class:`~repro.sim.multirate.
            MultiRateConfig` tuning the adaptive driver.
        backend: Array backend applied to every point (name,
            :class:`~repro.backend.ArrayBackend` instance, or ``None``
            for the ``REPRO_BACKEND``/numpy default).  A non-default
            backend joins the cache/checkpoint key, so its
            epsilon-bounded results never alias the numpy ones.

    Returns:
        Mapping from ``(scheduler name, benchmark set, load)`` to the
        run's :class:`SimulationResult`.
    """
    from .checkpoint import SweepCheckpoint
    from .parallel import execute_sweep, shared_cache

    points = [
        (name, benchmark_set, load)
        for benchmark_set in benchmark_sets
        for load in loads
        for name in scheduler_names
    ]
    if cache is None and use_cache:
        cache = shared_cache
    checkpoint = None
    if checkpoint_dir is not None:
        checkpoint = SweepCheckpoint(checkpoint_dir)
    results = execute_sweep(
        topology,
        params,
        points,
        max_workers=max_workers,
        audit=audit,
        audit_interval=audit_interval,
        cache=cache,
        fault_schedule=fault_schedule,
        timeout_s=timeout_s,
        max_retries=max_retries,
        retry_backoff_s=retry_backoff_s,
        checkpoint=checkpoint,
        telemetry=telemetry,
        profile=profile,
        stepping=stepping,
        multirate=multirate,
        backend=backend,
    )
    return dict(zip(points, results))

"""Convenience entry points for running simulations and sweeps."""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Tuple

from ..config.parameters import SimulationParameters
from ..server.topology import ServerTopology
from ..workloads.arrivals import ArrivalProcess
from ..workloads.benchmark import BenchmarkSet
from .engine import Simulation
from .results import SimulationResult


def run_once(
    topology: ServerTopology,
    params: SimulationParameters,
    scheduler,
    benchmark_set: BenchmarkSet,
    load: float,
) -> SimulationResult:
    """Run one (scheduler, benchmark set, load) configuration.

    The job stream is generated from the parameters' seed, so every
    scheduler evaluated with the same ``params`` sees the *identical*
    workload — the paper's comparison methodology.
    """
    arrivals = ArrivalProcess(
        benchmark_set=benchmark_set,
        load=load,
        n_sockets=topology.n_sockets,
        seed=params.seed,
        duration_scale=params.duration_scale,
    )
    jobs = arrivals.generate(params.sim_time_s)
    return Simulation(topology, params, scheduler).run(jobs)


def run_sweep(
    topology: ServerTopology,
    params: SimulationParameters,
    scheduler_names: Sequence[str],
    benchmark_sets: Sequence[BenchmarkSet],
    loads: Sequence[float],
) -> Dict[Tuple[str, BenchmarkSet, float], SimulationResult]:
    """Run the full cross product of schedulers, sets and loads.

    Returns:
        Mapping from ``(scheduler name, benchmark set, load)`` to the
        run's :class:`SimulationResult`.
    """
    from ..core import get_scheduler  # local import: avoids cycle

    results: Dict[Tuple[str, BenchmarkSet, float], SimulationResult] = {}
    for benchmark_set in benchmark_sets:
        for load in loads:
            for name in scheduler_names:
                scheduler = get_scheduler(name)
                results[(name, benchmark_set, load)] = run_once(
                    topology, params, scheduler, benchmark_set, load
                )
    return results

"""The opt-in multi-rate (event-driven) stepping driver.

The fixed-step :class:`~repro.sim.engine.Engine` ticks every component
once per millisecond even through long stretches where nothing decides
anything: no job in the queue, no socket busy, no fault transition or
interval boundary due.  The paper's physics is two-timescale (~5 ms
chip vs ~30 s socket RC constants), so those stretches are pure
first-order relaxation with a closed-form solution.

:class:`MultiRateEngine` drives the *same* pipeline through a
three-hook extension of the :class:`~repro.sim.pipeline.StepComponent`
protocol:

- ``next_event_step(ctx)`` — the earliest step at or after the current
  one at which the component acts (arrival admissions, migration / fan
  / trace / audit interval boundaries, fault-schedule transitions).
  ``None`` means "never constrains the window".
- ``is_quiescent(ctx)`` — a state-dependent veto: pending queue
  entries, busy sockets, latched thermal trips or insufficient
  trip-guard headroom all keep the engine in fixed stepping.  The base
  class answers ``False`` so unknown components disable windows by
  default.
- ``on_window(ctx, plan)`` — applies a whole decision-free window's
  aggregate effect, called in pipeline order.  The thermal updater
  advances the closed form (and may truncate the window via
  ``plan.steps_advanced``); everything downstream honours the
  truncated count.

The driver scans for the nearest upcoming event, and when the gap is
at least :attr:`MultiRateConfig.min_window_steps` it replaces that many
fixed steps with one ``on_window`` sweep.  Inside decision windows —
and whenever any component vetoes — it falls back to plain fixed
1 ms stepping, calling the identical ``on_step`` hooks the fixed
engine would.

Correctness contract (pinned by ``tests/test_multirate_differential.py``
and ``benchmarks/bench_multirate.py``): all discrete decisions
(placements, frequency selections, trips, migrations, completions) are
bit-identical to fixed stepping — every decision is still taken by a
plain fixed step on bit-exactly-reached inputs where it matters — so
the decision fingerprint (:func:`repro.sim.fingerprint.
decision_fingerprint`) matches exactly, while mid-window temperature
traces carry a bounded error (epsilon) controlled by
:attr:`MultiRateConfig.tolerance_c`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..errors import ConfigurationError, SimulationError
from .pipeline import EngineContext, StepComponent
from .results import SimulationResult

#: The stepping modes the engine seam accepts.
STEPPING_MODES = ("fixed", "adaptive")


@dataclass(frozen=True)
class MultiRateConfig:
    """Tuning knobs of the adaptive driver.

    Attributes:
        tolerance_c: Maximum sink-node movement per closed-form substep,
            degC.  The sink drives the frozen-ambient (coupling) error,
            so this bounds the epsilon of mid-window temperature traces;
            smaller values refresh the coupling chain more often.
        trip_guard_c: Guard band below the thermal-trip temperature,
            degC.  Windows only open while every chip's whole idle
            trajectory (current, target and idle-equilibrium
            temperature) stays below ``trip_c - trip_guard_c``; a
            latched mid-window check at half the band truncates the
            window early.
        min_window_steps: Smallest gap to the next event worth taking
            as a window; shorter gaps degenerate to plain fixed
            stepping with zero protocol overhead beyond the scan.
    """

    tolerance_c: float = 0.05
    trip_guard_c: float = 2.0
    min_window_steps: int = 4

    def __post_init__(self) -> None:
        if self.tolerance_c <= 0:
            raise ConfigurationError(
                f"tolerance_c must be positive, got {self.tolerance_c}"
            )
        if self.trip_guard_c < 0:
            raise ConfigurationError(
                f"trip_guard_c must be non-negative, got "
                f"{self.trip_guard_c}"
            )
        if self.min_window_steps < 1:
            raise ConfigurationError(
                f"min_window_steps must be >= 1, got "
                f"{self.min_window_steps}"
            )


@dataclass
class WindowPlan:
    """One decision-free window handed through ``on_window`` hooks.

    Attributes:
        start: First step the window covers.
        end: One past the last step the window may cover (exclusive).
        chip_max: Per-socket running maximum of substep-end chip
            temperatures, maintained by the thermal updater for the
            metrics accumulator's high-water mark.
        steps_advanced: Steps actually covered — the thermal updater
            sets this, and may set it below ``end - start`` when its
            trip guard truncates the window.  Components ordered after
            it must use this count, and the engine resumes fixed
            stepping at ``start + steps_advanced``.
        n_substeps: Closed-form substeps the advance used.
    """

    start: int
    end: int
    chip_max: Optional[np.ndarray] = None
    steps_advanced: int = 0
    n_substeps: int = 0

    @property
    def n_steps(self) -> int:
        """Steps the window spans at most."""
        return self.end - self.start


def boundary_step(time_s: float, dt: float) -> int:
    """Smallest step ``s`` with ``s * dt >= time_s``, predicate-exact.

    ``ceil(time_s / dt)`` alone can land one step off when the division
    rounds across the boundary; the fix-up loops re-check the exact
    float predicate the engine itself evaluates (``step * dt``), so the
    returned step is the first one whose clock time reaches
    ``time_s`` — bit-for-bit the step at which ``t >= time_s`` flips.
    """
    step = max(int(np.ceil(time_s / dt)), 0)
    while step * dt < time_s:
        step += 1
    while step > 0 and (step - 1) * dt >= time_s:
        step -= 1
    return step


class MultiRateEngine:
    """Drives a component pipeline with adaptive window skipping.

    A drop-in alternative to :class:`~repro.sim.engine.Engine` for the
    same pipeline: identical ``on_run_start`` / ``on_run_end``
    lifecycle, identical ``on_step`` calls for every executed fixed
    step, plus closed-form window advances over detected quiescent
    stretches.  The run summary lands in ``result.stepping``.
    """

    def __init__(
        self,
        components: Sequence[StepComponent],
        config: Optional[MultiRateConfig] = None,
        profiler=None,
    ):
        if not components:
            raise SimulationError("engine needs at least one component")
        self.components = list(components)
        self.config = config if config is not None else MultiRateConfig()
        self.profiler = profiler

    def run(self, ctx: EngineContext) -> SimulationResult:
        """Drive the pipeline over the configured horizon."""
        thermal = ctx.state.thermal
        if abs(thermal.socket_tau_s - thermal.chip_tau_s) <= (
            1e-9 * max(thermal.socket_tau_s, thermal.chip_tau_s)
        ):
            raise ConfigurationError(
                "adaptive stepping needs distinct chip and socket time "
                "constants (the closed-form window advance would be "
                "resonant); use stepping='fixed'"
            )
        ctx.multirate = self.config
        components = self.components
        profiler = self.profiler
        instrumented = profiler is not None
        clock = None
        window_bucket = None
        run_started = 0.0
        if instrumented:
            profiler.bind(components)
            clock = profiler.clock
            ctx.profile_buckets = profiler.buckets
            ctx.profile_clock = clock
            window_bucket = profiler.buckets.setdefault(
                "window:advance", [0, 0.0]
            )
            run_started = clock()
        totals = profiler.totals_s if instrumented else None
        prev = run_started
        for i, component in enumerate(components):
            component.on_run_start(ctx)
            if instrumented:
                now = clock()
                totals[i] += now - prev
                prev = now
        hooks = tuple(c.on_step for c in components)
        # The window protocol is duck-typed like the step protocol:
        # a component without ``is_quiescent`` permanently vetoes
        # windows (the conservative default for unknown observers),
        # one without ``next_event_step`` never constrains them, and
        # one without ``on_window`` contributes nothing to a window.
        quiescent_probes = tuple(
            getattr(c, "is_quiescent", None) for c in components
        )
        event_probes = tuple(
            getattr(c, "next_event_step", None) for c in components
        )
        window_hooks = tuple(
            getattr(c, "on_window", None) for c in components
        )
        state = ctx.state
        dt = ctx.dt
        n_steps = ctx.n_steps
        warmup = ctx.warmup_s
        warmup_step = boundary_step(warmup, dt)
        chip_max = np.empty(ctx.topology.n_sockets)
        executed = 0
        skipped = 0
        n_windows = 0
        n_substeps = 0
        step = 0
        while step < n_steps:
            t = step * dt
            ctx.step = step
            ctx.time_s = t
            state.time_s = t
            ctx.in_window = t >= warmup
            end = self._window_end(
                ctx, step, warmup_step, quiescent_probes, event_probes
            )
            if end is not None:
                chip_max.fill(-np.inf)
                plan = WindowPlan(
                    start=step, end=end, chip_max=chip_max
                )
                if instrumented:
                    started = clock()
                for window_hook in window_hooks:
                    if window_hook is not None:
                        window_hook(ctx, plan)
                if instrumented:
                    window_bucket[0] += 1
                    window_bucket[1] += clock() - started
                advanced = plan.steps_advanced
                if advanced > 0:
                    n_windows += 1
                    n_substeps += plan.n_substeps
                    skipped += advanced
                    telemetry = ctx.telemetry
                    if telemetry is not None:
                        telemetry.emit(
                            "window_skip",
                            step=step,
                            t=t,
                            n_steps=int(advanced),
                            n_substeps=int(plan.n_substeps),
                        )
                    # Leave the clock on the last covered step, as if
                    # that step had just executed.
                    last = step + advanced - 1
                    t_last = last * dt
                    ctx.step = last
                    ctx.time_s = t_last
                    state.time_s = t_last
                    step += advanced
                    continue
                # A window that advanced nothing (no closed-form seat
                # in the pipeline) degenerates to a plain fixed step.
            if instrumented:
                hook_prev = clock()
                for i, hook in enumerate(hooks):
                    hook(ctx)
                    now = clock()
                    totals[i] += now - hook_prev
                    hook_prev = now
            else:
                for hook in hooks:
                    hook(ctx)
            executed += 1
            step += 1
        for i, component in enumerate(components):
            if instrumented:
                prev = clock()
            component.on_run_end(ctx)
            if instrumented:
                totals[i] += clock() - prev
        ctx.result.stepping = {
            "mode": "adaptive",
            "n_steps": n_steps,
            "executed_steps": executed,
            "skipped_steps": skipped,
            "n_windows": n_windows,
            "n_substeps": n_substeps,
        }
        if instrumented:
            profiler.calls = [executed + 2] * len(components)
            profiler.n_steps = max(executed, 1)
            profiler.engine_elapsed_s = clock() - run_started
            ctx.result.profile = profiler.profile()
        return ctx.result

    def _window_end(
        self,
        ctx: EngineContext,
        step: int,
        warmup_step: int,
        quiescent_probes,
        event_probes,
    ) -> Optional[int]:
        """The exclusive end of a quiescent window starting now, if any.

        Polls every component's veto, then intersects their next-event
        horizons; the warm-up boundary and the run horizon cap the
        window so it never straddles the measurement-window edge.
        Returns ``None`` when no window of at least
        ``min_window_steps`` opens (including when any component acts
        at the current step).
        """
        limit = ctx.n_steps
        if step < warmup_step:
            limit = min(limit, warmup_step)
        min_steps = self.config.min_window_steps
        if step + min_steps > limit:
            return None
        for probe in quiescent_probes:
            if probe is None or not probe(ctx):
                return None
        end = limit
        for probe in event_probes:
            if probe is None:
                continue
            event = probe(ctx)
            if event is None:
                continue
            if event <= step:
                return None
            if event < end:
                end = event
        if end - step < min_steps:
            return None
        return end

"""The step-pipeline decomposition of the simulation engine.

Historically every cross-cutting concern of a run — arrivals, placement,
migration, DVFS, coupled thermals, fan control, metrics, tracing,
auditing — was hand-inlined in one monolithic ``Simulation.run`` loop,
so each new feature meant another ``if step % k == 0`` branch threaded
through 350 lines.  This module decomposes that loop into explicit,
ordered :class:`StepComponent` objects driven by a slim
:class:`~repro.sim.engine.Engine` that owns nothing but the clock.

Component ordering is a *contract*, not a convenience: the pipeline is
bit-identical to the historical monolith only because each phase reads
exactly the values its predecessor produced within the same step.  The
fixed order is::

    ArrivalAdmitter   admit arrivals into the central queue
    FaultInjector     (optional) apply due fault transitions
    Placer            scheduling decisions over idle sockets
    Migrator          (optional) periodic thermal-aware migration
    PowerManager      DVFS selection and electrical power draw
    WorkRetirer       retire work, interpolate completions
    FanControl        (optional) airflow scale for *this* step's thermals
    ThermalUpdater    coupling chain + two-node transient advance
    MetricsAccumulator measurement-window metric accumulation
    Tracer            (optional) time-series sampling
    Auditor           (optional) read-only invariant checks

Notably ``FanControl`` runs *before* ``ThermalUpdater`` (the airflow
scale it computes applies to the same step's coupling), and
``MetricsAccumulator`` runs *after* ``ThermalUpdater`` (the
max-chip-temperature metric sees post-advance temperatures).  See
``docs/architecture.md`` for the full contract and a recipe for adding
components.

Every component implements a three-hook protocol against a shared
:class:`EngineContext`:

- ``on_run_start(ctx)`` — reset per-run state (pointers, cadences);
- ``on_step(ctx)`` — advance one engine step;
- ``on_run_end(ctx)`` — finalise results (counters, derived metrics).

Components communicate only through the context (engine state, scratch
arrays, per-step scalars), never directly with each other.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..backend import numpy_xp as np

from ..backend import ArrayBackend, default_backend, get_backend
from ..config.parameters import SimulationParameters
from ..server.topology import ServerTopology
from ..thermal.dynamics import ema_window_sum
from ..workloads.job import Job
from ..workloads.power_model import leakage_power
from .power_manager import SelectionWorkspace, select_frequencies
from .results import SimulationResult
from .state import SimulationState
from .view import SchedulerView


@dataclass
class EngineContext:
    """Everything one simulation run shares across its components.

    Bundles the mutable :class:`~repro.sim.state.SimulationState`, the
    read-only :class:`~repro.sim.view.SchedulerView` handed to
    policies, precomputed topology arrays, the run RNG, the
    accumulating :class:`~repro.sim.results.SimulationResult`, and the
    per-step scratch values the pipeline phases hand to each other.

    Attributes:
        topology: Server geometry.
        params: Simulation parameters.
        scheduler: Placement policy.
        state: Mutable engine state (components own all mutation).
        view: Read-only state view handed to policies.
        rng: Run RNG (seeded from ``params.seed``); policies draw from
            it in decision order, which fixes the draw sequence.
        result: Accumulating run result.
        ordered_jobs: Jobs sorted by ``(arrival_s, job_id)``.
        queue: Central FIFO of admitted-but-unplaced jobs.
        dt: Engine step, seconds (the power-manager interval).
        dt_ms: Engine step, milliseconds.
        n_steps: Total steps to the configured horizon.
        warmup_s: Measurement-window start time, seconds.
        history_alpha: Per-step EMA weight of the temperature history.
        r_ext: Per-socket external (sink) thermal resistance, degC/W.
        theta_offset: Per-socket Equation 1 offset, degC.
        theta_slope: Per-socket Equation 1 slope, degC/W.
        gated_power: Per-socket idle (power-gated) draw, W.
        tdp: Per-socket TDP, W.
        inlet_c: Server inlet air temperature, degC.
        max_mhz: Top ladder frequency, MHz.
        span_mhz: Ladder frequency span, MHz.
        sustained_mhz: Highest non-boost frequency, MHz.
        step: Current step index (engine-owned).
        time_s: Current simulation time (engine-owned), seconds.
        in_window: Whether the current step is past warm-up.
        power: This step's per-socket power draw, W (written by
            :class:`PowerManager`, completion-adjusted by
            :class:`WorkRetirer`; aliases ``state.power_w``).
        retired: This step's per-socket retired work, ms (written by
            :class:`WorkRetirer`).
        busy_frac: Fraction of this step each socket was busy (written
            by :class:`WorkRetirer`).
        airflow_scale: Relative airflow this step (1.0 without fan
            control).
        fan_power_w: Electrical fan power this step, W.
        fan_active: Whether a fan controller is part of the pipeline.
    """

    topology: ServerTopology
    params: SimulationParameters
    scheduler: object
    state: SimulationState
    view: SchedulerView
    rng: np.random.Generator
    result: SimulationResult
    ordered_jobs: List[Job]
    queue: deque = field(default_factory=deque)

    # Clock constants.
    dt: float = 0.0
    dt_ms: float = 0.0
    n_steps: int = 0
    warmup_s: float = 0.0
    history_alpha: float = 0.0

    # Precomputed topology arrays.
    r_ext: np.ndarray = None
    theta_offset: np.ndarray = None
    theta_slope: np.ndarray = None
    gated_power: np.ndarray = None
    tdp: np.ndarray = None
    inlet_c: float = 0.0

    # Ladder constants.
    max_mhz: float = 0.0
    span_mhz: float = 0.0
    sustained_mhz: float = 0.0

    # Engine-owned clock state.
    step: int = 0
    time_s: float = 0.0
    in_window: bool = False

    # Per-step scratch handed between phases.
    power: np.ndarray = None
    retired: np.ndarray = None
    busy_frac: np.ndarray = None
    airflow_scale: float = 1.0
    fan_power_w: float = 0.0
    fan_active: bool = False

    # Fault machinery (a repro.faults.injector.FaultState when a fault
    # schedule is configured).  Every fault hook in the pipeline is
    # gated on this being non-None, which keeps fault-free runs
    # bit-identical to the pre-fault engine.
    fault_state: Optional[object] = None

    # Telemetry stream (a repro.obs.session.TelemetrySession while a
    # run records telemetry, bound by the TelemetryRecorder component).
    # Every emission site is gated on this being non-None and only
    # *reads* state, which keeps telemetry-off runs bit-identical to
    # telemetry-on runs.
    telemetry: Optional[object] = None

    # Profiling sub-buckets (non-None only on profiled runs): the bound
    # StepProfiler's ``name -> [calls, total_s]`` accumulator dict and
    # its clock.  Components opt in to finer-than-component accounting
    # through these (e.g. the Placer's per-policy ``place:*`` bucket);
    # like the profiler itself they only read the clock, so bucketed
    # runs stay bit-identical to plain ones.
    profile_buckets: Optional[dict] = None
    profile_clock: Optional[object] = None

    # Multi-rate stepping config (a repro.sim.multirate.MultiRateConfig
    # when the adaptive driver runs this context, else None).  Window
    # hooks read tolerance and guard-band settings from it.
    multirate: Optional[object] = None

    # Array backend for the seam-managed kernels (DVFS selection, the
    # two-node thermal advance).  The default in-place numpy backend is
    # the historical hot path; non-inplace backends route those kernels
    # through their pure functional twins.
    backend: ArrayBackend = field(default_factory=default_backend)

    @classmethod
    def create(
        cls,
        topology: ServerTopology,
        params: SimulationParameters,
        scheduler,
        ordered_jobs: List[Job],
        n_jobs_submitted: int,
        backend: Optional[ArrayBackend] = None,
    ) -> "EngineContext":
        """Build a fully initialised context for one run."""
        state = SimulationState(topology, params)
        rng = np.random.default_rng(params.seed + 0x5EED)
        ladder = state.ladder
        dt = params.power_manager_interval_s
        result = SimulationResult(
            scheduler_name=getattr(scheduler, "name", "unknown"),
            params=params,
            topology=topology,
            n_jobs_submitted=n_jobs_submitted,
            measured_span_s=params.measured_span_s,
        )
        return cls(
            topology=topology,
            params=params,
            scheduler=scheduler,
            state=state,
            view=SchedulerView(state),
            rng=rng,
            result=result,
            ordered_jobs=ordered_jobs,
            dt=dt,
            dt_ms=dt * 1000.0,
            n_steps=int(round(params.sim_time_s / dt)),
            warmup_s=params.warmup_s,
            history_alpha=1.0 - np.exp(-dt / params.history_tau_s),
            r_ext=topology.r_ext_array,
            theta_offset=topology.theta_offset_array,
            theta_slope=topology.theta_slope_array,
            gated_power=topology.gated_power_array,
            tdp=topology.tdp_array,
            inlet_c=params.inlet_c,
            max_mhz=float(ladder.max_mhz),
            span_mhz=float(ladder.max_mhz - ladder.min_mhz),
            sustained_mhz=float(ladder.sustained_mhz),
            backend=get_backend(backend),
        )


class StepComponent:
    """One ordered phase of the simulation step pipeline.

    Subclasses override any of the three hooks; the defaults do
    nothing, so pure observers only implement what they need.  A
    component must confine its writes to its own phase's outputs (see
    the module docstring for the ordering contract) and must reset all
    per-run state in :meth:`on_run_start` so engine objects can be
    reused across runs.
    """

    def on_run_start(self, ctx: EngineContext) -> None:
        """Reset per-run state before the first step."""

    def on_step(self, ctx: EngineContext) -> None:
        """Advance this component's phase by one engine step."""

    def on_run_end(self, ctx: EngineContext) -> None:
        """Finalise results after the last step."""

    # -- Multi-rate stepping protocol (see repro.sim.multirate) --------
    #
    # The adaptive driver polls these three hooks; the fixed-step
    # engine never calls them, so components that ignore the protocol
    # are unaffected.  ``next_event_step`` bounds *when* a component
    # next acts; ``is_quiescent`` is a state-dependent veto on opening
    # a window at all; ``on_window`` applies a whole decision-free
    # window's aggregate effect in one call (pipeline order is
    # preserved across components).

    def next_event_step(self, ctx: EngineContext) -> Optional[int]:
        """Earliest step ``>= ctx.step`` at which this component acts.

        ``None`` means "no scheduled event" (the component never
        constrains the window end).  Returning ``ctx.step`` itself
        marks the component as acting *now*, which blocks a window
        from opening at the current step.
        """
        return None

    def is_quiescent(self, ctx: EngineContext) -> bool:
        """Whether this component's state permits skipping steps now.

        The conservative default is ``False``: a component that has
        not opted into the multi-rate protocol disables window
        detection entirely, so unknown extra components can never be
        silently fast-forwarded past.
        """
        return False

    def on_window(self, ctx: EngineContext, plan) -> None:
        """Apply this component's effect over a decision-free window.

        Called in pipeline order with a
        :class:`repro.sim.multirate.WindowPlan`.  Most components do
        nothing (their per-step effect is exactly zero in a quiescent
        window); the thermal updater advances the closed form and may
        truncate the window by lowering ``plan.steps_advanced``.
        Components ordered after it must honour the truncated count.
        """


class ArrivalAdmitter(StepComponent):
    """Admit jobs whose arrival time has come into the central queue.

    Jobs are consumed from ``ctx.ordered_jobs`` (sorted by
    ``(arrival_s, job_id)`` — the id tie-break makes results
    independent of the caller's list order for same-timestamp
    arrivals).
    """

    def __init__(self) -> None:
        self._pointer = 0

    def on_run_start(self, ctx: EngineContext) -> None:
        self._pointer = 0
        ctx.queue.clear()

    def on_step(self, ctx: EngineContext) -> None:
        ordered = ctx.ordered_jobs
        pointer = self._pointer
        t = ctx.time_s
        queue = ctx.queue
        while pointer < len(ordered) and ordered[pointer].arrival_s <= t:
            queue.append(ordered[pointer])
            pointer += 1
        self._pointer = pointer
        if len(queue) > ctx.result.max_queue_length:
            ctx.result.max_queue_length = len(queue)

    def next_event_step(self, ctx: EngineContext) -> Optional[int]:
        ordered = ctx.ordered_jobs
        if self._pointer >= len(ordered):
            return None
        arrival = ordered[self._pointer].arrival_s
        dt = ctx.dt
        # Smallest step s with s * dt >= arrival, computed with the
        # exact admission predicate (``arrival <= s * dt``) so the
        # boundary step matches :meth:`on_step`'s float comparison
        # bit-for-bit even when ``arrival / dt`` rounds badly.
        s = int(np.ceil(arrival / dt))
        while s * dt < arrival:
            s += 1
        while s > 0 and (s - 1) * dt >= arrival:
            s -= 1
        return max(s, ctx.step)

    def is_quiescent(self, ctx: EngineContext) -> bool:
        # Pending arrivals are fully captured by next_event_step;
        # between arrivals the admitter is a no-op.
        return True


class Placer(StepComponent):
    """Drain the queue onto idle sockets via the scheduling policy.

    The policy sees only the read-only :class:`~repro.sim.view.
    SchedulerView`; all mutation (the actual assignment) happens here
    through the engine-owned state.  Killed sockets are excluded from
    the idle set, so a policy can never be offered a dead socket.
    """

    def __init__(self) -> None:
        self._bucket = None
        self._clock = None

    def on_run_start(self, ctx: EngineContext) -> None:
        ctx.scheduler.reset(ctx.view, ctx.rng)
        # Per-policy placement bucket (profiled runs only): this step
        # component opts in to sub-component accounting, attributing
        # each step's drain (dominated by select_socket scoring) to
        # "place:<policy name>" with a placement count.  Resolved once
        # per run so the step hook only pays two clock reads.
        buckets = ctx.profile_buckets
        self._bucket = None
        if buckets is not None:
            scheduler = ctx.scheduler
            name = getattr(scheduler, "name", type(scheduler).__name__)
            self._bucket = buckets.setdefault(f"place:{name}", [0, 0.0])
            self._clock = ctx.profile_clock

    def on_step(self, ctx: EngineContext) -> None:
        queue = ctx.queue
        if not queue:
            return
        state = ctx.state
        scheduler = ctx.scheduler
        view = ctx.view
        idle = state.idle_socket_ids()
        faults = ctx.fault_state
        if faults is not None and faults.any_dead:
            idle = idle[faults.alive[idle]]
        telemetry = ctx.telemetry
        acc = self._bucket
        if acc is not None:
            # Timing the drain once per step instead of per placement
            # keeps the profiler's <2% overhead bound intact.
            clock = self._clock
            placed = 0
            started = clock()
            while queue and idle.size:
                job = queue.popleft()
                socket_id = int(scheduler.select_socket(job, idle, view))
                state.assign(job, socket_id)
                idle = idle[idle != socket_id]
                placed += 1
                if telemetry is not None:
                    telemetry.emit(
                        "placement",
                        step=ctx.step,
                        t=ctx.time_s,
                        job_id=int(job.job_id),
                        socket=socket_id,
                    )
            acc[1] += clock() - started
            acc[0] += placed
            return
        while queue and idle.size:
            job = queue.popleft()
            socket_id = int(scheduler.select_socket(job, idle, view))
            state.assign(job, socket_id)
            idle = idle[idle != socket_id]
            if telemetry is not None:
                telemetry.emit(
                    "placement",
                    step=ctx.step,
                    t=ctx.time_s,
                    job_id=int(job.job_id),
                    socket=socket_id,
                )

    def is_quiescent(self, ctx: EngineContext) -> bool:
        # A non-empty queue means placement decisions are pending on
        # every step (a socket may free up at any time).
        return not ctx.queue


class Migrator(StepComponent):
    """Periodically consult the migration policy and apply its moves.

    Registered only when a :class:`repro.core.migration.
    MigrationPolicy` is configured.  Fires every
    ``policy.interval_s`` (skipping step 0 — nothing has run yet).
    """

    def __init__(self, policy) -> None:
        self.policy = policy
        self._interval_steps = 1
        self._migrations = 0

    def on_run_start(self, ctx: EngineContext) -> None:
        self._interval_steps = max(
            int(round(self.policy.interval_s / ctx.dt)), 1
        )
        self._migrations = 0

    def on_step(self, ctx: EngineContext) -> None:
        step = ctx.step
        if step == 0 or step % self._interval_steps != 0:
            return
        state = ctx.state
        telemetry = ctx.telemetry
        for source, destination in self.policy.propose(ctx.view):
            state.migrate(source, destination, self.policy.cost_ms)
            self._migrations += 1
            if telemetry is not None:
                telemetry.emit(
                    "migration",
                    step=ctx.step,
                    t=ctx.time_s,
                    source=int(source),
                    destination=int(destination),
                )

    def on_run_end(self, ctx: EngineContext) -> None:
        ctx.result.n_migrations = self._migrations

    def next_event_step(self, ctx: EngineContext) -> Optional[int]:
        # Next firing boundary (step > 0 and step % interval == 0).
        # Windows never span a firing step, so the policy is always
        # consulted by a plain fixed step, exactly as in fixed mode.
        k = self._interval_steps
        step = ctx.step
        boundary = step + (-step % k)
        return boundary if boundary > 0 else k

    def is_quiescent(self, ctx: EngineContext) -> bool:
        return True


class PowerManager(StepComponent):
    """Select per-socket DVFS states and compute electrical power.

    Runs the batched frequency selection (see
    :func:`repro.sim.power_manager.select_frequencies`), then derives
    socket power: dynamic + leakage while busy, the gated floor while
    idle.  The leakage vector is computed once and shared with the
    frequency selection — both need the identical quantity.

    Under a fault schedule this phase is also the graceful-degradation
    seat: it advances the thermal-trip machine on the **true** chip
    temperatures, applies wedged-ladder / power-cap / trip frequency
    overrides before power is derived, and zeroes the draw of killed
    sockets (see :class:`repro.faults.injector.FaultState`).
    """

    def __init__(self) -> None:
        self._leak: Optional[np.ndarray] = None
        self._busy_power: Optional[np.ndarray] = None
        self._workspace: Optional[SelectionWorkspace] = None
        self._last_throttled = 0

    def on_run_start(self, ctx: EngineContext) -> None:
        n = ctx.topology.n_sockets
        self._leak = np.empty(n)
        self._busy_power = np.empty(n)
        self._workspace = SelectionWorkspace.for_ladder(
            ctx.state.ladder, n
        )
        self._last_throttled = 0

    def on_step(self, ctx: EngineContext) -> None:
        state = ctx.state
        params = ctx.params
        ladder = state.ladder
        backend = ctx.backend
        if backend.inplace:
            leak = _leakage_into(state.chip_c, ctx.tdp, self._leak)
        else:
            # Pure twin of _leakage_into: same ops, commutative
            # multiply reorder only (bit-identical under numpy).
            leak = (
                leakage_power(state.chip_c, 1.0, xp=backend.xp) * ctx.tdp
            )
        freq = select_frequencies(
            sink_c=state.sink_c,
            chip_c=state.chip_c,
            dyn_max_w=state.dyn_max_w,
            dyn_exp=state.dyn_exp,
            tdp_w=ctx.tdp,
            theta_offset=ctx.theta_offset,
            theta_slope=ctx.theta_slope,
            ladder=ladder,
            params=params,
            leakage_w=leak,
            workspace=self._workspace,
            backend=backend,
        )
        faults = ctx.fault_state
        if faults is not None:
            faults.update_trips(state.chip_c, ctx.step, ctx.dt)
            freq = faults.override_frequencies(
                freq, float(ladder.min_mhz)
            )
        busy = state.busy
        state.freq_mhz = np.where(busy, freq, float(ladder.min_mhz))
        # busy_power = dyn_max * (freq / max) ** exp + leak, in place
        # (see dynamic_power; commutative reorder only).
        busy_power = np.divide(
            state.freq_mhz,
            ctx.max_mhz,
            out=self._busy_power if backend.inplace else None,
        )
        busy_power **= state.dyn_exp
        busy_power *= state.dyn_max_w
        busy_power += leak
        power = np.where(busy, busy_power, ctx.gated_power)
        if faults is not None:
            faults.zero_dead_power(power)
        state.power_w = power
        ctx.power = power
        telemetry = ctx.telemetry
        if telemetry is not None:
            if faults is not None:
                # trip_step == step picks exactly this step's new trips.
                for socket_id in np.nonzero(
                    faults.trip_step == ctx.step
                )[0]:
                    telemetry.emit(
                        "thermal_trip",
                        step=ctx.step,
                        t=ctx.time_s,
                        socket=int(socket_id),
                    )
            # Edge-triggered: one event whenever the number of busy
            # sockets held below the sustained frequency changes.
            n_throttled = int(
                np.count_nonzero(
                    busy & (state.freq_mhz < ctx.sustained_mhz)
                )
            )
            if n_throttled != self._last_throttled:
                self._last_throttled = n_throttled
                telemetry.emit(
                    "dvfs_throttle",
                    step=ctx.step,
                    t=ctx.time_s,
                    n_throttled=n_throttled,
                )

    def is_quiescent(self, ctx: EngineContext) -> bool:
        # A latched thermal trip runs a per-step hold/hysteresis state
        # machine that cannot be skipped; a non-zero throttle edge
        # would emit a telemetry event on the next all-idle step.
        if self._last_throttled != 0:
            return False
        faults = ctx.fault_state
        return faults is None or not faults.tripped.any()

    def on_window(self, ctx: EngineContext, plan) -> None:
        # With no busy socket and no queue (guaranteed by the window
        # preconditions) every step of the window selects the ladder
        # floor for every socket and draws the gated power — constant
        # across the window, so one evaluation covers all of it.
        state = ctx.state
        min_mhz = float(state.ladder.min_mhz)
        state.freq_mhz = np.full(ctx.topology.n_sockets, min_mhz)
        power = ctx.gated_power.copy()
        faults = ctx.fault_state
        if faults is not None:
            faults.zero_dead_power(power)
        state.power_w = power
        ctx.power = power


class WorkRetirer(StepComponent):
    """Retire work at the granted frequency; interpolate completions.

    A completing socket's final sub-step is interpolated: the job
    retires exactly its remaining work, the socket counts as busy for
    the matching fraction of the step, and its power blends toward the
    gated floor for the remainder.  Completed jobs inside the
    measurement window are appended to the result in socket order.
    """

    def __init__(self) -> None:
        self._done_ms: Optional[np.ndarray] = None
        self._busy_frac: Optional[np.ndarray] = None
        self._retired: Optional[np.ndarray] = None
        self._completing: Optional[np.ndarray] = None

    def on_run_start(self, ctx: EngineContext) -> None:
        n = ctx.topology.n_sockets
        self._done_ms = np.empty(n)
        self._busy_frac = np.empty(n)
        self._retired = np.empty(n)
        self._completing = np.empty(n, dtype=bool)

    def on_step(self, ctx: EngineContext) -> None:
        state = ctx.state
        power = ctx.power
        max_mhz = ctx.max_mhz
        span_mhz = ctx.span_mhz if ctx.span_mhz > 0 else 1.0
        # done_ms = (1 - perf_drop * (max - freq) / span) * dt_ms,
        # accumulated in place (commutative reorder only).
        done_ms = np.subtract(max_mhz, state.freq_mhz, out=self._done_ms)
        done_ms *= state.perf_drop
        done_ms /= span_mhz
        np.subtract(1.0, done_ms, out=done_ms)
        done_ms *= ctx.dt_ms
        busy = state.busy
        busy_frac = self._busy_frac
        np.copyto(busy_frac, busy)
        # retired = where(busy, done_ms, 0) == busy * done_ms exactly
        # (1.0 * x and 0.0 * x are exact for finite positive work).
        retired = np.multiply(busy, done_ms, out=self._retired)
        completing = np.less_equal(
            state.remaining_work_ms, done_ms, out=self._completing
        )
        completing &= busy
        if completing.any():
            ids = np.nonzero(completing)[0]
            remaining = state.remaining_work_ms[ids]
            frac = remaining / done_ms[ids]
            retired[ids] = remaining
            busy_frac[ids] = frac
            power[ids] = (
                power[ids] * frac
                + ctx.gated_power[ids] * (1.0 - frac)
            )
            t = ctx.time_s
            dt = ctx.dt
            in_window = ctx.in_window
            completed = ctx.result.completed_jobs
            for i, socket_id in enumerate(ids):
                job = state.release(int(socket_id))
                job.finish_s = t + frac[i] * dt
                if in_window:
                    completed.append(job)
        # Completions already released; subtract in place only where
        # still running (masked ufunc instead of fancy-index copies).
        remaining = state.remaining_work_ms
        np.subtract(
            remaining, done_ms, out=remaining, where=state.busy
        )
        ctx.retired = retired
        ctx.busy_frac = busy_frac

    def is_quiescent(self, ctx: EngineContext) -> bool:
        # Any busy socket retires work (and may complete) every step;
        # windows only open over fully idle stretches.  This veto is
        # the seat of the "no upcoming retirements" condition: with no
        # running job there is no completion horizon to scan.
        return not ctx.state.busy.any()

    def on_window(self, ctx: EngineContext, plan) -> None:
        # All idle: zero retirement and zero busy fraction throughout.
        self._retired[:] = 0.0
        self._busy_frac[:] = 0.0
        ctx.retired = self._retired
        ctx.busy_frac = self._busy_frac


class FanControl(StepComponent):
    """Modulate delivered airflow with the server's heat load.

    Registered only when a :class:`repro.thermal.fan_control.
    FanController` is configured.  Runs *before* the thermal update:
    the scale computed from this step's power applies to this step's
    coupling (less airflow strengthens coupling as 1/scale) and its
    cubic electrical power is charged to this step's cooling energy.
    """

    def __init__(self, controller) -> None:
        self.controller = controller
        self._interval_steps = 1

    def on_run_start(self, ctx: EngineContext) -> None:
        self._interval_steps = max(
            int(round(self.controller.interval_s / ctx.dt)), 1
        )
        ctx.fan_active = True
        ctx.airflow_scale = 1.0
        ctx.fan_power_w = self.controller.fan_power_w(1.0)

    def on_step(self, ctx: EngineContext) -> None:
        if ctx.step % self._interval_steps != 0:
            return
        scale = self.controller.airflow_scale(float(ctx.power.sum()))
        ctx.airflow_scale = scale
        ctx.fan_power_w = self.controller.fan_power_w(scale)

    def next_event_step(self, ctx: EngineContext) -> Optional[int]:
        # Next firing boundary (fires on step 0 and every interval).
        # Between boundaries the scale and fan power are frozen, which
        # is exactly the window invariant.
        step = ctx.step
        return step + (-step % self._interval_steps)

    def is_quiescent(self, ctx: EngineContext) -> bool:
        return True


class ThermalUpdater(StepComponent):
    """Advance the coupling chain and the two-node thermal model.

    Computes each sink's heat output into the air stream, maps it
    through the coupling matrix to per-socket entry temperatures
    (scaled by the current airflow), and relaxes the sink and chip
    nodes toward their new targets with precomputed per-run decay
    factors.  Also maintains the smoothed temperature history and
    utilisation EMAs that policies consume.
    """

    def __init__(self) -> None:
        self._sink_decay = 1.0
        self._chip_decay = 1.0
        self._scratch: Optional[np.ndarray] = None
        self._theta: Optional[np.ndarray] = None
        self._ema: Optional[np.ndarray] = None
        self._matrix: Optional[np.ndarray] = None
        self._ambient: Optional[np.ndarray] = None

    def on_run_start(self, ctx: EngineContext) -> None:
        thermal = ctx.state.thermal
        self._sink_decay = float(
            np.exp(-ctx.dt / thermal.socket_tau_s)
        )
        self._chip_decay = float(np.exp(-ctx.dt / thermal.chip_tau_s))
        n = ctx.topology.n_sockets
        self._scratch = np.empty(n)
        self._theta = np.empty(n)
        self._ema = np.empty(n)
        self._matrix = ctx.topology.coupling.matrix
        self._ambient = np.empty(n)

    def _refresh_ambient(self, ctx: EngineContext) -> np.ndarray:
        """Recompute per-socket entry air from the current sink state.

        Shared verbatim by the fixed step and each multi-rate substep:
        the identical operation order keeps fixed-mode trajectories
        bit-identical to the pre-refactor engine, and makes a window
        substep's ambient refresh exactly a fixed step's.
        """
        state = ctx.state
        inlet = ctx.inlet_c
        backend = ctx.backend
        inplace = backend.inplace
        sink_heat = state.thermal.sink_heat_output_w(
            state.ambient_c,
            ctx.r_ext,
            out=self._scratch if inplace else None,
            backend=backend,
        )
        # entry = inlet + M @ heat; the rise over inlet is divided by
        # the airflow scale and re-based on the inlet.  The round-trip
        # through the rise is kept even at scale 1.0 (the rounded
        # subtraction is part of the historical trajectory); only the
        # exact division by 1.0 is skipped.  The pure branch performs
        # the identical float ops on fresh arrays.
        if inplace:
            ambient = np.matmul(
                self._matrix, sink_heat, out=self._ambient
            )
            ambient += inlet
            ambient -= inlet
            if ctx.airflow_scale != 1.0:
                ambient /= ctx.airflow_scale
            faults = ctx.fault_state
            if faults is not None and faults.airflow_degraded:
                # Degraded fan lanes amplify their sockets' entry rises
                # as 1/residual-airflow, on top of any global
                # fan-control scale.
                ambient /= faults.airflow_factor
            ambient += inlet
        else:
            ambient = self._matrix @ sink_heat
            ambient = ambient + inlet
            ambient = ambient - inlet
            if ctx.airflow_scale != 1.0:
                ambient = ambient / ctx.airflow_scale
            faults = ctx.fault_state
            if faults is not None and faults.airflow_degraded:
                ambient = ambient / faults.airflow_factor
            ambient = ambient + inlet
        state.ambient_c = ambient
        return ambient

    def on_step(self, ctx: EngineContext) -> None:
        state = ctx.state
        power = ctx.power
        backend = ctx.backend
        ambient = self._refresh_ambient(ctx)
        if not backend.inplace:
            # Pure twin: identical float ops on fresh arrays.
            theta = ctx.theta_slope * power + ctx.theta_offset
            state.thermal.step_decayed(
                self._sink_decay,
                self._chip_decay,
                ambient,
                power,
                ctx.params.r_int,
                ctx.r_ext,
                theta,
                backend=backend,
            )
            alpha = ctx.history_alpha
            state.history_c = (
                state.history_c + (state.chip_c - state.history_c) * alpha
            )
            state.busy_ema = (
                state.busy_ema + (state.busy - state.busy_ema) * alpha
            )
            return
        theta = np.multiply(ctx.theta_slope, power, out=self._theta)
        theta += ctx.theta_offset
        state.thermal.step_decayed(
            self._sink_decay,
            self._chip_decay,
            ambient,
            power,
            ctx.params.r_int,
            ctx.r_ext,
            theta,
            scratch=self._scratch,
        )
        # history += alpha * (chip - history), accumulated in place.
        alpha = ctx.history_alpha
        ema = np.subtract(state.chip_c, state.history_c, out=self._ema)
        ema *= alpha
        state.history_c += ema
        np.subtract(state.busy, state.busy_ema, out=ema)
        ema *= alpha
        state.busy_ema += ema

    def is_quiescent(self, ctx: EngineContext) -> bool:
        # Without fault machinery there is no thermal trip to guard.
        # With it, a window may only open when every socket has guard
        # band headroom below the trip temperature along its entire
        # idle trajectory: now, at the current chip target, and at the
        # idle equilibrium the closed form relaxes toward (the steady
        # state the RC network solver would produce for idle power).
        faults = ctx.fault_state
        if faults is None:
            return True
        config = ctx.multirate
        guard = config.trip_guard_c if config is not None else 0.0
        limit = faults.trip_c - guard
        state = ctx.state
        thermal = state.thermal
        if float(thermal.chip_c.max()) >= limit:
            return False
        power = ctx.gated_power
        if faults.any_dead:
            power = np.where(faults.alive, power, 0.0)
        theta = ctx.theta_slope * power + ctx.theta_offset
        r_int = ctx.params.r_int
        chip_now = thermal.sink_c + power * r_int + theta
        if float(chip_now.max()) >= limit:
            return False
        rise = self._matrix @ power
        if ctx.airflow_scale != 1.0:
            rise = rise / ctx.airflow_scale
        if faults.airflow_degraded:
            rise = rise / faults.airflow_factor
        chip_inf = (
            rise + ctx.inlet_c + power * (ctx.r_ext + r_int) + theta
        )
        return float(chip_inf.max()) < limit

    def on_window(self, ctx: EngineContext, plan) -> None:
        """Advance the thermal state across a decision-free window.

        Splits the window into substeps of ``k`` whole engine steps.
        Each substep refreshes the coupling chain (the identical
        operation order as a fixed step), freezes the resulting entry
        air, and jumps ``k`` steps with the exact closed-form solution
        of the decayed two-node recurrence
        (:meth:`repro.thermal.dynamics.TwoNodeThermalState.
        advance_window`).  The substep length adapts so the slow
        (sink) node moves at most ``tolerance_c`` per substep — the
        sink drives the frozen-ambient error, so this bounds the
        mid-window temperature deviation from fixed stepping (the
        documented epsilon); when even one step moves further, the
        refresh falls back to every-step cadence automatically.

        The temperature-history and utilisation EMAs are updated with
        the exact exponentially-weighted window sums of the closed
        form's modes, and a latched guard at half the trip guard band
        truncates the window early (``plan.steps_advanced``) so fixed
        stepping resumes before any trip could latch.
        """
        state = ctx.state
        thermal = state.thermal
        power = ctx.power
        config = ctx.multirate
        tolerance = config.tolerance_c
        faults = ctx.fault_state
        trip_limit = None
        if faults is not None:
            trip_limit = faults.trip_c - 0.5 * config.trip_guard_c
        theta = np.multiply(ctx.theta_slope, power, out=self._theta)
        theta += ctx.theta_offset
        r_int = ctx.params.r_int
        r_ext = ctx.r_ext
        sink_decay = self._sink_decay
        chip_decay = self._chip_decay
        log_sink_decay = float(np.log(sink_decay))
        alpha = ctx.history_alpha
        beta = 1.0 - alpha
        total = plan.end - plan.start
        remaining = total
        chip_max = plan.chip_max
        while remaining > 0:
            ambient = self._refresh_ambient(ctx)
            gap = float(
                np.abs(
                    thermal.sink_c - (ambient + power * r_ext)
                ).max()
            )
            if gap <= tolerance:
                k = remaining
            else:
                # Largest k with gap * (1 - sink_decay**k) <= tol.
                k = int(np.log1p(-tolerance / gap) / log_sink_decay)
                k = max(1, min(k, remaining))
            modes = thermal.advance_window(
                sink_decay,
                chip_decay,
                k,
                ambient,
                power,
                r_int,
                r_ext,
                theta,
            )
            beta_k = beta**k
            g_chip = ema_window_sum(chip_decay, beta, k)
            g_sink = ema_window_sum(sink_decay, beta, k)
            state.history_c = (
                beta_k * state.history_c
                + modes.chip_const * (1.0 - beta_k)
                + alpha
                * (
                    modes.chip_amp * g_chip
                    + modes.cross_amp * g_sink
                )
            )
            # All idle: the utilisation EMA decays geometrically.
            state.busy_ema = state.busy_ema * beta_k
            remaining -= k
            plan.n_substeps += 1
            if chip_max is not None:
                np.maximum(chip_max, thermal.chip_c, out=chip_max)
            if (
                trip_limit is not None
                and float(thermal.chip_c.max()) >= trip_limit
            ):
                break
        plan.steps_advanced = total - remaining


class MetricsAccumulator(StepComponent):
    """Accumulate measurement-window metrics into the run result.

    Pure observer over the step's final state: energy, cooling energy,
    retired work, busy/boost time, the frequency-time product and the
    per-socket temperature high-water mark.
    """

    def __init__(self) -> None:
        self._scale_time_product = 0.0
        self._buf: Optional[np.ndarray] = None

    def on_run_start(self, ctx: EngineContext) -> None:
        self._scale_time_product = 0.0
        self._buf = np.empty(ctx.topology.n_sockets)

    def on_step(self, ctx: EngineContext) -> None:
        if not ctx.in_window:
            return
        result = ctx.result
        state = ctx.state
        dt = ctx.dt
        busy_frac = ctx.busy_frac
        buf = self._buf
        result.energy_j += float(ctx.power.sum()) * dt
        result.cooling_energy_j += ctx.fan_power_w * dt
        self._scale_time_product += ctx.airflow_scale * dt
        result.work_done += ctx.retired
        np.multiply(busy_frac, dt, out=buf)
        result.busy_time_s += buf
        # freq_time += (freq / max) * busy_frac * dt, in place.
        np.divide(state.freq_mhz, ctx.max_mhz, out=buf)
        buf *= busy_frac
        buf *= dt
        result.freq_time_product += buf
        boosting = (state.freq_mhz > ctx.sustained_mhz) & (
            busy_frac > 0
        )
        np.multiply(boosting, busy_frac, out=buf)
        buf *= dt
        result.boost_time_s += buf
        np.maximum(
            result.max_chip_c, state.chip_c, out=result.max_chip_c
        )

    def on_run_end(self, ctx: EngineContext) -> None:
        if ctx.params.measured_span_s > 0:
            ctx.result.mean_airflow_scale = (
                self._scale_time_product / ctx.params.measured_span_s
                if ctx.fan_active
                else 1.0
            )

    def is_quiescent(self, ctx: EngineContext) -> bool:
        return True

    def on_window(self, ctx: EngineContext, plan) -> None:
        # An all-idle window contributes exactly zero to the work /
        # busy / frequency / boost accumulators (their fixed-step
        # increments are exact +0.0), so only the continuous-time
        # integrals and the temperature high-water mark accumulate.
        if not ctx.in_window:
            return
        steps = plan.steps_advanced
        if steps <= 0:
            return
        result = ctx.result
        span = ctx.dt * steps
        result.energy_j += float(ctx.power.sum()) * span
        result.cooling_energy_j += ctx.fan_power_w * span
        self._scale_time_product += ctx.airflow_scale * span
        if plan.chip_max is not None:
            np.maximum(
                result.max_chip_c,
                plan.chip_max,
                out=result.max_chip_c,
            )


class Tracer(StepComponent):
    """Sample aggregate state into a fresh per-run time-series trace.

    Registered only when a :class:`repro.sim.tracing.TraceConfig` is
    configured.  Each run gets its own
    :class:`~repro.sim.tracing.SimulationTrace`, so reusing the engine
    never concatenates traces across runs.
    """

    def __init__(self, config) -> None:
        self.config = config
        self._interval_steps = 1
        self._trace = None

    def reset(self) -> None:
        """Drop any trace left from a previous (possibly aborted) run.

        ``on_run_start`` already builds a fresh trace per run; this
        exists for the engine-reuse contract shared with the telemetry
        recorder, so harnesses can scrub observers between runs without
        knowing their types.
        """
        self._trace = None

    def on_run_start(self, ctx: EngineContext) -> None:
        from .tracing import SimulationTrace

        self.reset()
        self._interval_steps = max(
            int(round(self.config.interval_s / ctx.dt)), 1
        )
        self._trace = SimulationTrace()
        ctx.result.trace = self._trace

    def on_step(self, ctx: EngineContext) -> None:
        if ctx.step % self._interval_steps != 0:
            return
        self._trace.sample(ctx.state, len(ctx.queue), ctx.max_mhz)
        if self.config.per_zone:
            self._trace.sample_zones(ctx.state)

    def next_event_step(self, ctx: EngineContext) -> Optional[int]:
        # Windows stop at sample boundaries so both stepping modes
        # sample at the identical steps — the per-sample temperature
        # differences are exactly the epsilon oracle's observable.
        step = ctx.step
        return step + (-step % self._interval_steps)

    def is_quiescent(self, ctx: EngineContext) -> bool:
        return True


class Auditor(StepComponent):
    """Periodically check physical invariants of the full state.

    Registered only when an :class:`repro.sim.invariants.
    InvariantAuditor` is configured.  The auditor is reset at run
    start, so reusing a `Simulation` across runs audits each run
    independently instead of silently accumulating energy baselines.
    Auditing reads state only — an audited run is bit-identical to an
    unaudited one.
    """

    def __init__(self, auditor) -> None:
        self.auditor = auditor

    def on_run_start(self, ctx: EngineContext) -> None:
        self.auditor.reset()

    def on_step(self, ctx: EngineContext) -> None:
        if ctx.step % self.auditor.interval_steps != 0:
            return
        self.auditor.check(
            ctx.state,
            ctx.step,
            ctx.result.energy_j,
            airflow_scale=ctx.airflow_scale,
            faults=ctx.fault_state,
        )

    def next_event_step(self, ctx: EngineContext) -> Optional[int]:
        # Audits run on fixed steps only; windows stop at each audit
        # boundary so every scheduled check still happens.
        step = ctx.step
        return step + (-step % self.auditor.interval_steps)

    def is_quiescent(self, ctx: EngineContext) -> bool:
        return True


def build_pipeline(
    migrator=None,
    fan_controller=None,
    trace_config=None,
    auditor=None,
    fault_injector=None,
    extra_components: Sequence[StepComponent] = (),
) -> List[StepComponent]:
    """The standard component pipeline in contract order.

    ``ArrivalAdmitter``, ``Placer``, ``PowerManager``, ``WorkRetirer``,
    ``ThermalUpdater`` and ``MetricsAccumulator`` are always present;
    ``Migrator``, ``FanControl``, ``Tracer``, ``Auditor`` and the
    ``fault_injector`` (a :class:`repro.faults.injector.FaultInjector`)
    join only when configured.  The fault injector is spliced between
    ``ArrivalAdmitter`` and ``Placer``: fault transitions must land
    before any placement decision so a socket killed at time t never
    receives a job at time t, and the injector's view swap must happen
    before the placer hands the view to the scheduler's ``reset``.
    ``extra_components`` are appended after the standard pipeline —
    safe for read-only observers; components that mutate state must
    instead be spliced in explicitly at the right phase (see
    ``docs/architecture.md``).
    """
    components: List[StepComponent] = [ArrivalAdmitter()]
    if fault_injector is not None:
        components.append(fault_injector)
    components.append(Placer())
    if migrator is not None:
        components.append(Migrator(migrator))
    components.append(PowerManager())
    components.append(WorkRetirer())
    if fan_controller is not None:
        components.append(FanControl(fan_controller))
    components.append(ThermalUpdater())
    components.append(MetricsAccumulator())
    if trace_config is not None:
        components.append(Tracer(trace_config))
    if auditor is not None:
        components.append(Auditor(auditor))
    components.extend(extra_components)
    return components


def _leakage_into(
    chip_c: np.ndarray, tdp_w: np.ndarray, out: np.ndarray
) -> np.ndarray:
    """Vectorised leakage with per-socket TDP, into a reused buffer.

    Performs ``leakage_power(chip_c, 1.0) * tdp_w`` (see
    :func:`repro.workloads.power_model.leakage_power`) with the
    identical per-element operation order, accumulated in place —
    reorderings are limited to commutative multiplies, so the result
    is bit-identical to the composed public functions.
    """
    from ..workloads.power_model import (
        LEAKAGE_FLOOR_FRACTION,
        LEAKAGE_REFERENCE_C,
        LEAKAGE_TDP_FRACTION,
        LEAKAGE_TEMP_COEFF,
    )

    factor = np.subtract(chip_c, LEAKAGE_REFERENCE_C, out=out)
    factor *= LEAKAGE_TEMP_COEFF
    factor += 1.0
    np.maximum(factor, LEAKAGE_FLOOR_FRACTION, out=factor)
    factor *= LEAKAGE_TDP_FRACTION
    factor *= tdp_w
    return factor

"""The time-stepped simulation engine."""

from __future__ import annotations

from collections import deque
from typing import List, Sequence

import numpy as np

from ..config.parameters import SimulationParameters
from ..errors import SimulationError
from ..server.topology import ServerTopology
from ..workloads.job import Job
from .power_manager import dynamic_power, select_frequencies
from .results import SimulationResult
from .state import SimulationState


class Simulation:
    """One simulation run binding a topology, parameters and a policy.

    Usage::

        sim = Simulation(moonshot_sut(), scaled(), CoolestFirst())
        result = sim.run(arrival_process.generate(params.sim_time_s))
    """

    def __init__(
        self,
        topology: ServerTopology,
        params: SimulationParameters,
        scheduler,
        migrator=None,
        fan_controller=None,
        trace_config=None,
        auditor=None,
    ):
        """Bind a run configuration.

        Args:
            topology: Server geometry.
            params: Simulation parameters.
            scheduler: Placement policy (see :mod:`repro.core`).
            migrator: Optional :class:`repro.core.migration.
                MigrationPolicy`; consulted every ``migrator.interval_s``
                to move long-running jobs to faster sockets.
            fan_controller: Optional :class:`repro.thermal.fan_control.
                FanController`; modulates airflow with load, scaling the
                coupling strength and charging cubic fan power.
            trace_config: Optional :class:`repro.sim.tracing.
                TraceConfig`; samples aggregate state periodically into
                ``result.trace``.
            auditor: Optional :class:`repro.sim.invariants.
                InvariantAuditor`; checks physical invariants every
                ``auditor.interval_steps`` steps and raises on
                violation.  Must be a fresh instance per run.
        """
        self.topology = topology
        self.params = params
        self.scheduler = scheduler
        self.migrator = migrator
        self.fan_controller = fan_controller
        self.trace_config = trace_config
        self.auditor = auditor

    def run(self, jobs: Sequence[Job]) -> SimulationResult:
        """Simulate the given job stream to the configured horizon.

        Args:
            jobs: Jobs with pre-sampled arrival times and durations.
                The list is consumed in arrival order.

        Returns:
            A :class:`SimulationResult` covering the post-warm-up
            window.
        """
        topology = self.topology
        params = self.params
        state = SimulationState(topology, params)
        rng = np.random.default_rng(params.seed + 0x5EED)
        self.scheduler.reset(state, rng)

        ladder = state.ladder
        max_mhz = float(ladder.max_mhz)
        span_mhz = float(ladder.max_mhz - ladder.min_mhz)
        sustained = float(ladder.sustained_mhz)
        dt = params.power_manager_interval_s
        dt_ms = dt * 1000.0
        n_steps = int(round(params.sim_time_s / dt))
        warmup = params.warmup_s
        history_alpha = 1.0 - np.exp(-dt / params.history_tau_s)

        r_ext = topology.r_ext_array
        theta_off = topology.theta_offset_array
        theta_slope = topology.theta_slope_array
        gated_power = topology.gated_power_array
        tdp = topology.tdp_array
        coupling = topology.coupling
        inlet = params.inlet_c

        result = SimulationResult(
            scheduler_name=getattr(self.scheduler, "name", "unknown"),
            params=params,
            topology=topology,
            n_jobs_submitted=len(jobs),
            measured_span_s=params.measured_span_s,
        )

        ordered = sorted(jobs, key=lambda job: job.arrival_s)
        if params.warm_start and ordered:
            _warm_start(state, ordered)
        pointer = 0
        queue: deque = deque()
        migration_steps = 0
        if self.migrator is not None:
            migration_steps = max(
                int(round(self.migrator.interval_s / dt)), 1
            )
        migrations = 0
        fan = self.fan_controller
        fan_steps = 0
        airflow_scale = 1.0
        fan_power_w = 0.0
        scale_time_product = 0.0
        if fan is not None:
            fan_steps = max(int(round(fan.interval_s / dt)), 1)
            fan_power_w = fan.fan_power_w(airflow_scale)
        auditor = self.auditor
        trace = None
        trace_steps = 0
        if self.trace_config is not None:
            from .tracing import SimulationTrace

            trace = SimulationTrace()
            trace_steps = max(
                int(round(self.trace_config.interval_s / dt)), 1
            )
            result.trace = trace

        for step in range(n_steps):
            t = step * dt
            state.time_s = t

            # 1. Admit arrivals.
            while (
                pointer < len(ordered)
                and ordered[pointer].arrival_s <= t
            ):
                queue.append(ordered[pointer])
                pointer += 1
            if len(queue) > result.max_queue_length:
                result.max_queue_length = len(queue)

            # 2. Scheduling decisions.
            if queue:
                idle = state.idle_socket_ids()
                while queue and idle.size:
                    job = queue.popleft()
                    socket_id = int(
                        self.scheduler.select_socket(job, idle, state)
                    )
                    state.assign(job, socket_id)
                    idle = idle[idle != socket_id]

            # 2b. Optional thermal-aware migration of long jobs.
            if (
                migration_steps
                and step > 0
                and step % migration_steps == 0
            ):
                for source, destination in self.migrator.propose(state):
                    state.migrate(
                        source, destination, self.migrator.cost_ms
                    )
                    migrations += 1

            # 3. Power manager: frequency selection and power draw.
            freq = select_frequencies(
                sink_c=state.sink_c,
                chip_c=state.chip_c,
                dyn_max_w=state.dyn_max_w,
                dyn_exp=state.dyn_exp,
                tdp_w=tdp,
                theta_offset=theta_off,
                theta_slope=theta_slope,
                ladder=ladder,
                params=params,
            )
            state.freq_mhz = np.where(
                state.busy, freq, float(ladder.min_mhz)
            )
            busy_power = (
                dynamic_power(
                    state.freq_mhz, state.dyn_max_w, state.dyn_exp, max_mhz
                )
                + _leakage(state.chip_c, tdp)
            )
            power = np.where(state.busy, busy_power, gated_power)
            state.power_w = power

            # 4. Retire work; detect and interpolate completions.
            rate = 1.0 - state.perf_drop * (max_mhz - state.freq_mhz) / (
                span_mhz if span_mhz > 0 else 1.0
            )
            done_ms = rate * dt_ms
            busy_frac = state.busy.astype(float)
            retired = np.where(state.busy, done_ms, 0.0)
            completing = state.busy & (
                state.remaining_work_ms <= done_ms
            )
            in_window = t >= warmup
            if completing.any():
                for socket_id in np.nonzero(completing)[0]:
                    remaining = state.remaining_work_ms[socket_id]
                    frac = remaining / done_ms[socket_id]
                    retired[socket_id] = remaining
                    busy_frac[socket_id] = frac
                    power[socket_id] = (
                        power[socket_id] * frac
                        + gated_power[socket_id] * (1.0 - frac)
                    )
                    job = state.release(socket_id)
                    job.finish_s = t + frac * dt
                    if in_window:
                        result.completed_jobs.append(job)
            running = state.busy  # completions already released
            state.remaining_work_ms[running] -= done_ms[running]

            # 5. Thermal advance: coupling then the two-node model.
            if fan is not None and step % fan_steps == 0:
                airflow_scale = fan.airflow_scale(float(power.sum()))
                fan_power_w = fan.fan_power_w(airflow_scale)
            sink_heat = state.thermal.sink_heat_output_w(
                state.ambient_c, r_ext
            )
            rises = coupling.entry_temperatures(inlet, sink_heat) - inlet
            state.ambient_c = inlet + rises / airflow_scale
            theta = theta_off + theta_slope * power
            state.thermal.step(
                dt, state.ambient_c, power, params.r_int, r_ext, theta
            )
            state.history_c += history_alpha * (
                state.chip_c - state.history_c
            )
            state.busy_ema += history_alpha * (
                state.busy - state.busy_ema
            )

            # 6. Metrics.
            if in_window:
                result.energy_j += float(power.sum()) * dt
                result.cooling_energy_j += fan_power_w * dt
                scale_time_product += airflow_scale * dt
                result.work_done += retired
                result.busy_time_s += busy_frac * dt
                rel = state.freq_mhz / max_mhz
                result.freq_time_product += rel * busy_frac * dt
                result.boost_time_s += (
                    (state.freq_mhz > sustained) & (busy_frac > 0)
                ) * busy_frac * dt
                np.maximum(
                    result.max_chip_c, state.chip_c, out=result.max_chip_c
                )
            if trace is not None and step % trace_steps == 0:
                trace.sample(state, len(queue), max_mhz)
                if self.trace_config.per_zone:
                    trace.sample_zones(state)

            # 7. Optional invariant audit (read-only: an audited run is
            # bit-identical to an unaudited one).
            if (
                auditor is not None
                and step % auditor.interval_steps == 0
            ):
                auditor.check(state, step, result.energy_j)

        result.n_migrations = migrations
        if params.measured_span_s > 0:
            result.mean_airflow_scale = (
                scale_time_product / params.measured_span_s
                if fan is not None
                else 1.0
            )
        if not result.completed_jobs:
            raise SimulationError(
                "no jobs completed in the measurement window; increase "
                "sim_time_s or the offered load"
            )
        return result


def _leakage(chip_c: np.ndarray, tdp_w: np.ndarray) -> np.ndarray:
    """Vectorised leakage with per-socket TDP."""
    from ..workloads.power_model import leakage_power

    return leakage_power(chip_c, 1.0) * tdp_w


def _warm_start(state: SimulationState, ordered: List[Job]) -> None:
    """Initialise the thermal field at the load-consistent fixed point.

    The sink chain converges stage by stage along the airflow direction
    (each position needs a few sink time constants after its upwind
    neighbours settle), so a cold start needs a horizon of dozens of
    time constants — affordable in the paper's 30-minute runs, not in
    scaled ones.  We instead solve the steady state for a *uniform*
    placement at the offered utilisation (leakage iterated to a fixed
    point) and start there; the warm-up window then relaxes the field
    to the scheduler-specific distribution.
    """
    from ..workloads.benchmark import profile_for
    from ..workloads.power_model import LEAKAGE_TDP_FRACTION
    from .steady_state import solve_steady_state

    topology = state.topology
    params = state.params
    n = topology.n_sockets
    horizon = params.sim_time_s
    total_work_s = sum(job.work_ms for job in ordered) / 1000.0
    utilization = min(total_work_s / (horizon * n), 1.0)

    sustained = float(state.ladder.sustained_mhz)
    max_mhz = float(state.ladder.max_mhz)
    apps = [job.app for job in ordered[:512]]
    dyn_max = (
        float(np.mean([app.power_at_max_w for app in apps]))
        - LEAKAGE_TDP_FRACTION * topology.tdp_array
    )
    dyn_exp = float(
        np.mean(
            [
                profile_for(app.benchmark_set).dynamic_exponent
                for app in apps
            ]
        )
    )
    dyn_sustained = dyn_max * (sustained / max_mhz) ** dyn_exp

    field = solve_steady_state(
        topology,
        params,
        dyn_sustained,
        np.full(n, utilization),
    )
    state.thermal.sink_c = field.sink_c.copy()
    state.thermal.chip_c = field.chip_c.copy()
    state.ambient_c = field.ambient_c.copy()
    state.history_c = field.chip_c.copy()
    state.busy_ema = np.full(n, utilization)

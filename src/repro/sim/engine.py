"""The time-stepped simulation engine.

The engine is a thin clock driver over the step pipeline defined in
:mod:`repro.sim.pipeline`: a fixed-order list of
:class:`~repro.sim.pipeline.StepComponent` objects, each advancing one
concern (arrivals, placement, DVFS, thermals, …) against a shared
:class:`~repro.sim.pipeline.EngineContext`.  :class:`Simulation` is the
user-facing binding of a topology, parameters and a policy; it
assembles the standard pipeline and delegates to :class:`Engine`.
"""

from __future__ import annotations

import functools
from typing import List, Sequence

import numpy as np

from ..errors import ConfigurationError, SimulationError
from ..workloads.job import Job
from .pipeline import EngineContext, StepComponent, build_pipeline
from .results import SimulationResult


@functools.lru_cache(maxsize=None)
def _step_driver(n_components: int, instrumented: bool):
    """Compile the step loop for an ``n``-component pipeline.

    A generic inner loop over the hook list spends more on dispatch
    and (when profiling) list indexing than on the hooks' bookkeeping
    itself — measured ~1.8 us per step against ~0.25 us for an
    unrolled body.  So, ``namedtuple``-style, we generate the unrolled
    source for the exact component count and ``exec`` it once (cached
    per count).  Both engine variants run through this template so
    that profiled and unprofiled processes execute near-identical
    code: the instrumented flavour only adds one chained
    ``clock()``-and-accumulate per hook (timestamps are chained
    between consecutive hooks rather than paired around each, halving
    the clock reads).  The trajectory is bit-identical either way.
    """
    names = [f"h{i}" for i in range(n_components)]
    args = "steps, ctx, state, dt, warmup, hooks"
    if instrumented:
        args += ", clock, totals"
    lines = [
        f"def _driver({args}):",
        f"    {', '.join(names)}{',' if n_components == 1 else ''} = hooks",
    ]
    if instrumented:
        accs = [f"a{i}" for i in range(n_components)]
        lines.append(f"    {' = '.join(accs)} = 0.0")
    lines += [
        "    for step in steps:",
        "        t = step * dt",
        "        ctx.step = step",
        "        ctx.time_s = t",
        "        state.time_s = t",
        "        ctx.in_window = t >= warmup",
    ]
    if instrumented:
        lines.append("        prev = clock()")
    for i in range(n_components):
        lines.append(f"        h{i}(ctx)")
        if instrumented:
            lines += [
                "        now = clock()",
                f"        a{i} += now - prev",
                "        prev = now",
            ]
    if instrumented:
        lines.append(
            "    "
            + "; ".join(
                f"totals[{i}] += a{i}" for i in range(n_components)
            )
        )
    namespace: dict = {}
    exec("\n".join(lines), namespace)  # noqa: S102 - static template
    return namespace["_driver"]


class Engine:
    """Owns the clock; drives an ordered component pipeline.

    The engine itself holds no simulation logic: it calls
    ``on_run_start`` on every component, advances ``ctx.n_steps`` fixed
    steps calling ``on_step`` in pipeline order, then calls
    ``on_run_end``.  All physics, policy and bookkeeping live in the
    components.
    """

    def __init__(
        self, components: Sequence[StepComponent], profiler=None
    ):
        """Bind a pipeline, optionally with a profiler riding along.

        Args:
            profiler: Optional :class:`repro.obs.profiler.StepProfiler`.
                When set, the engine drives the instrumented loop
                variant, which accounts every component's wall-clock
                with *chained* timestamps — one clock reading between
                consecutive hooks, not a start/stop pair around each —
                so profiling costs a single ``perf_counter`` call per
                component per step (<2% overhead, pinned by
                ``benchmarks/bench_step_pipeline.py``).  The finished
                profile lands in ``result.profile``.
        """
        if not components:
            raise SimulationError("engine needs at least one component")
        self.components = list(components)
        self.profiler = profiler

    def run(self, ctx: EngineContext) -> SimulationResult:
        """Drive the pipeline over the configured horizon."""
        if self.profiler is not None:
            return self._run_profiled(ctx)
        for component in self.components:
            component.on_run_start(ctx)
        hooks = tuple(c.on_step for c in self.components)
        driver = _step_driver(len(hooks), instrumented=False)
        driver(
            range(ctx.n_steps),
            ctx,
            ctx.state,
            ctx.dt,
            ctx.warmup_s,
            hooks,
        )
        for component in self.components:
            component.on_run_end(ctx)
        return ctx.result

    def _run_profiled(self, ctx: EngineContext) -> SimulationResult:
        """The identical drive loop with per-component accounting.

        Kept as a separate variant so the unprofiled hot loop carries
        zero instrumentation cost.  The simulation trajectory is
        bit-identical either way — the profiler only reads the clock.
        """
        profiler = self.profiler
        profiler.bind(self.components)
        clock = profiler.clock
        totals = profiler.totals_s
        ctx.profile_buckets = profiler.buckets
        ctx.profile_clock = clock
        run_started = clock()
        prev = run_started
        for i, component in enumerate(self.components):
            component.on_run_start(ctx)
            now = clock()
            totals[i] += now - prev
            prev = now
        hooks = tuple(c.on_step for c in self.components)
        driver = _step_driver(len(hooks), instrumented=True)
        driver(
            range(ctx.n_steps),
            ctx,
            ctx.state,
            ctx.dt,
            ctx.warmup_s,
            hooks,
            clock,
            totals,
        )
        for i, component in enumerate(self.components):
            prev = clock()
            component.on_run_end(ctx)
            totals[i] += clock() - prev
        # Call counts are exact arithmetic, not accounting: the engine
        # contract drives every hook of every component exactly once
        # per phase, so counting inside the hot loop would only buy
        # overhead.
        n_calls = ctx.n_steps + 2
        profiler.calls = [n_calls] * len(self.components)
        profiler.n_steps = ctx.n_steps
        profiler.engine_elapsed_s = clock() - run_started
        ctx.result.profile = profiler.profile()
        return ctx.result


class Simulation:
    """One simulation run binding a topology, parameters and a policy.

    Usage::

        sim = Simulation(moonshot_sut(), scaled(), CoolestFirst())
        result = sim.run(arrival_process.generate(params.sim_time_s))

    A ``Simulation`` object is reusable: every :meth:`run` builds a
    fresh state, result and RNG, and each pipeline component resets its
    per-run state in ``on_run_start`` (the auditor and tracer included),
    so back-to-back runs are independent and reproducible.
    """

    def __init__(
        self,
        topology,
        params,
        scheduler,
        migrator=None,
        fan_controller=None,
        trace_config=None,
        auditor=None,
        fault_schedule=None,
        extra_components: Sequence[StepComponent] = (),
        telemetry=None,
        profile: bool = False,
        run_name: str = "run",
        stepping: str = "fixed",
        multirate=None,
        backend=None,
    ):
        """Bind a run configuration.

        Args:
            topology: Server geometry.
            params: Simulation parameters.
            scheduler: Placement policy (see :mod:`repro.core`); it
                receives a read-only :class:`~repro.sim.view.
                SchedulerView`, never the mutable state.
            migrator: Optional :class:`repro.core.migration.
                MigrationPolicy`; consulted every ``migrator.interval_s``
                to move long-running jobs to faster sockets.
            fan_controller: Optional :class:`repro.thermal.fan_control.
                FanController`; modulates airflow with load, scaling the
                coupling strength and charging cubic fan power.
            trace_config: Optional :class:`repro.sim.tracing.
                TraceConfig`; samples aggregate state periodically into
                ``result.trace``.
            auditor: Optional :class:`repro.sim.invariants.
                InvariantAuditor`; checks physical invariants every
                ``auditor.interval_steps`` steps and raises on
                violation.  Reset at every run start.
            fault_schedule: Optional :class:`repro.faults.schedule.
                FaultSchedule`; replayed deterministically by a
                :class:`repro.faults.injector.FaultInjector` spliced
                into the pipeline.  Runs without one (or with an empty
                schedule) are bit-identical to the fault-free engine.
            extra_components: Additional :class:`~repro.sim.pipeline.
                StepComponent` observers appended after the standard
                pipeline.
            telemetry: Optional :class:`repro.obs.session.
                TelemetryConfig` (or a bare directory path): record a
                structured JSONL event log per run.  Purely
                observational — a telemetry-enabled run is bit-identical
                to a telemetry-off run.
            profile: Account per-component wall-clock with a
                :class:`repro.obs.profiler.StepProfiler`; the finished
                profile lands in ``result.profile``.  Implied by
                ``telemetry.profile``.
            run_name: Base name of telemetry log files (each run
                appends ``-r<k>`` so reuse never interleaves logs).
            stepping: ``"fixed"`` (default) drives the classic
                1 ms-per-step :class:`Engine`; ``"adaptive"`` drives
                the :class:`repro.sim.multirate.MultiRateEngine`,
                which skips decision-free windows with the closed-form
                RC solution.  Discrete decisions are bit-identical
                either way; mid-window temperatures carry a bounded
                error (see ``docs/architecture.md``).
            multirate: Optional :class:`repro.sim.multirate.
                MultiRateConfig` tuning the adaptive driver; ignored
                under fixed stepping.
            backend: Array backend for the seam-managed kernels: a
                name from :data:`repro.backend.BACKEND_NAMES`, an
                :class:`repro.backend.ArrayBackend` instance, or
                ``None`` (consult ``REPRO_BACKEND``, default numpy).
                The default numpy backend is bit-identical to the
                pre-seam engine; other backends are validation modes
                (see ``docs/architecture.md`` §11).
        """
        self.topology = topology
        self.params = params
        self.scheduler = scheduler
        self.migrator = migrator
        self.fan_controller = fan_controller
        self.trace_config = trace_config
        self.auditor = auditor
        self.fault_schedule = fault_schedule
        self.extra_components = tuple(extra_components)
        if telemetry is not None:
            # Local import: repro.obs is an optional observer layer.
            from ..obs.session import TelemetryConfig

            telemetry = TelemetryConfig.coerce(telemetry, profile=profile)
            profile = telemetry.profile
        self.telemetry = telemetry
        self.profile = bool(profile)
        self.run_name = run_name
        from .multirate import STEPPING_MODES

        if stepping not in STEPPING_MODES:
            raise ConfigurationError(
                f"stepping must be one of {STEPPING_MODES}, "
                f"got {stepping!r}"
            )
        if stepping == "adaptive" and abs(
            params.socket_tau_s - params.chip_tau_s
        ) <= 1e-9 * max(params.socket_tau_s, params.chip_tau_s):
            raise ConfigurationError(
                "adaptive stepping needs distinct chip and socket time "
                "constants (the closed-form window advance would be "
                "resonant); use stepping='fixed'"
            )
        self.stepping = stepping
        self.multirate = multirate
        # Resolve eagerly so a bad name/spec raises ConfigurationError
        # at construction, not deep inside run().
        from ..backend import get_backend

        self.backend = get_backend(backend)
        # Both persist across runs: the recorder's run counter keeps
        # back-to-back logs in distinct files, and the profiler rebinds
        # (zeroing its accounting) at every run start.
        self._recorder = None
        self._profiler = None

    def build_components(self) -> List[StepComponent]:
        """The pipeline this simulation runs, in contract order.

        Override (or pass ``extra_components``) to customise the
        pipeline; see ``docs/architecture.md`` for the ordering
        contract.
        """
        fault_injector = None
        if self.fault_schedule is not None:
            # Local import: repro.faults imports the pipeline module.
            from ..faults.injector import FaultInjector

            fault_injector = FaultInjector(self.fault_schedule)
        extra = list(self.extra_components)
        if self.telemetry is not None:
            if self._recorder is None:
                from ..obs.session import TelemetryRecorder

                self._recorder = TelemetryRecorder(
                    self.telemetry, base_name=self.run_name
                )
            extra.append(self._recorder)
        return build_pipeline(
            migrator=self.migrator,
            fan_controller=self.fan_controller,
            trace_config=self.trace_config,
            auditor=self.auditor,
            fault_injector=fault_injector,
            extra_components=extra,
        )

    def run(self, jobs: Sequence[Job]) -> SimulationResult:
        """Simulate the given job stream to the configured horizon.

        Args:
            jobs: Jobs with pre-sampled arrival times and durations.
                Admission order is ``(arrival_s, job_id)``, so results
                do not depend on the caller's list order.

        Returns:
            A :class:`SimulationResult` covering the post-warm-up
            window.
        """
        ordered = sorted(
            jobs, key=lambda job: (job.arrival_s, job.job_id)
        )
        ctx = EngineContext.create(
            self.topology,
            self.params,
            self.scheduler,
            ordered,
            n_jobs_submitted=len(jobs),
            backend=self.backend,
        )
        if self.params.warm_start and ordered:
            _warm_start(ctx.state, ordered)
        profiler = None
        if self.profile:
            if self._profiler is None:
                from ..obs.profiler import StepProfiler

                self._profiler = StepProfiler()
            profiler = self._profiler
        if self.stepping == "adaptive":
            from .multirate import MultiRateEngine

            engine = MultiRateEngine(
                self.build_components(),
                config=self.multirate,
                profiler=profiler,
            )
        else:
            engine = Engine(self.build_components(), profiler=profiler)
        result = engine.run(ctx)
        if not result.completed_jobs:
            raise SimulationError(
                "no jobs completed in the measurement window; increase "
                "sim_time_s or the offered load"
            )
        return result


def _warm_start(state, ordered: List[Job]) -> None:
    """Initialise the thermal field at the load-consistent fixed point.

    The sink chain converges stage by stage along the airflow direction
    (each position needs a few sink time constants after its upwind
    neighbours settle), so a cold start needs a horizon of dozens of
    time constants — affordable in the paper's 30-minute runs, not in
    scaled ones.  We instead solve the steady state for a *uniform*
    placement at the offered utilisation (leakage iterated to a fixed
    point) and start there; the warm-up window then relaxes the field
    to the scheduler-specific distribution.
    """
    from ..workloads.benchmark import profile_for
    from ..workloads.power_model import LEAKAGE_TDP_FRACTION
    from .steady_state import solve_steady_state

    topology = state.topology
    params = state.params
    n = topology.n_sockets
    horizon = params.sim_time_s
    total_work_s = sum(job.work_ms for job in ordered) / 1000.0
    utilization = min(total_work_s / (horizon * n), 1.0)

    sustained = float(state.ladder.sustained_mhz)
    max_mhz = float(state.ladder.max_mhz)
    apps = [job.app for job in ordered[:512]]
    dyn_max = (
        float(np.mean([app.power_at_max_w for app in apps]))
        - LEAKAGE_TDP_FRACTION * topology.tdp_array
    )
    dyn_exp = float(
        np.mean(
            [
                profile_for(app.benchmark_set).dynamic_exponent
                for app in apps
            ]
        )
    )
    dyn_sustained = dyn_max * (sustained / max_mhz) ** dyn_exp

    field = solve_steady_state(
        topology,
        params,
        dyn_sustained,
        np.full(n, utilization),
    )
    state.thermal.sink_c = field.sink_c.copy()
    state.thermal.chip_c = field.chip_c.copy()
    state.ambient_c = field.ambient_c.copy()
    state.history_c = field.chip_c.copy()
    state.busy_ema = np.full(n, utilization)

"""The time-stepped simulation engine.

The engine is a thin clock driver over the step pipeline defined in
:mod:`repro.sim.pipeline`: a fixed-order list of
:class:`~repro.sim.pipeline.StepComponent` objects, each advancing one
concern (arrivals, placement, DVFS, thermals, …) against a shared
:class:`~repro.sim.pipeline.EngineContext`.  :class:`Simulation` is the
user-facing binding of a topology, parameters and a policy; it
assembles the standard pipeline and delegates to :class:`Engine`.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..errors import SimulationError
from ..workloads.job import Job
from .pipeline import EngineContext, StepComponent, build_pipeline
from .results import SimulationResult


class Engine:
    """Owns the clock; drives an ordered component pipeline.

    The engine itself holds no simulation logic: it calls
    ``on_run_start`` on every component, advances ``ctx.n_steps`` fixed
    steps calling ``on_step`` in pipeline order, then calls
    ``on_run_end``.  All physics, policy and bookkeeping live in the
    components.
    """

    def __init__(self, components: Sequence[StepComponent]):
        if not components:
            raise SimulationError("engine needs at least one component")
        self.components = list(components)

    def run(self, ctx: EngineContext) -> SimulationResult:
        """Drive the pipeline over the configured horizon."""
        for component in self.components:
            component.on_run_start(ctx)
        state = ctx.state
        dt = ctx.dt
        warmup = ctx.warmup_s
        step_hooks = [c.on_step for c in self.components]
        for step in range(ctx.n_steps):
            t = step * dt
            ctx.step = step
            ctx.time_s = t
            state.time_s = t
            ctx.in_window = t >= warmup
            for hook in step_hooks:
                hook(ctx)
        for component in self.components:
            component.on_run_end(ctx)
        return ctx.result


class Simulation:
    """One simulation run binding a topology, parameters and a policy.

    Usage::

        sim = Simulation(moonshot_sut(), scaled(), CoolestFirst())
        result = sim.run(arrival_process.generate(params.sim_time_s))

    A ``Simulation`` object is reusable: every :meth:`run` builds a
    fresh state, result and RNG, and each pipeline component resets its
    per-run state in ``on_run_start`` (the auditor and tracer included),
    so back-to-back runs are independent and reproducible.
    """

    def __init__(
        self,
        topology,
        params,
        scheduler,
        migrator=None,
        fan_controller=None,
        trace_config=None,
        auditor=None,
        fault_schedule=None,
        extra_components: Sequence[StepComponent] = (),
    ):
        """Bind a run configuration.

        Args:
            topology: Server geometry.
            params: Simulation parameters.
            scheduler: Placement policy (see :mod:`repro.core`); it
                receives a read-only :class:`~repro.sim.view.
                SchedulerView`, never the mutable state.
            migrator: Optional :class:`repro.core.migration.
                MigrationPolicy`; consulted every ``migrator.interval_s``
                to move long-running jobs to faster sockets.
            fan_controller: Optional :class:`repro.thermal.fan_control.
                FanController`; modulates airflow with load, scaling the
                coupling strength and charging cubic fan power.
            trace_config: Optional :class:`repro.sim.tracing.
                TraceConfig`; samples aggregate state periodically into
                ``result.trace``.
            auditor: Optional :class:`repro.sim.invariants.
                InvariantAuditor`; checks physical invariants every
                ``auditor.interval_steps`` steps and raises on
                violation.  Reset at every run start.
            fault_schedule: Optional :class:`repro.faults.schedule.
                FaultSchedule`; replayed deterministically by a
                :class:`repro.faults.injector.FaultInjector` spliced
                into the pipeline.  Runs without one (or with an empty
                schedule) are bit-identical to the fault-free engine.
            extra_components: Additional :class:`~repro.sim.pipeline.
                StepComponent` observers appended after the standard
                pipeline.
        """
        self.topology = topology
        self.params = params
        self.scheduler = scheduler
        self.migrator = migrator
        self.fan_controller = fan_controller
        self.trace_config = trace_config
        self.auditor = auditor
        self.fault_schedule = fault_schedule
        self.extra_components = tuple(extra_components)

    def build_components(self) -> List[StepComponent]:
        """The pipeline this simulation runs, in contract order.

        Override (or pass ``extra_components``) to customise the
        pipeline; see ``docs/architecture.md`` for the ordering
        contract.
        """
        fault_injector = None
        if self.fault_schedule is not None:
            # Local import: repro.faults imports the pipeline module.
            from ..faults.injector import FaultInjector

            fault_injector = FaultInjector(self.fault_schedule)
        return build_pipeline(
            migrator=self.migrator,
            fan_controller=self.fan_controller,
            trace_config=self.trace_config,
            auditor=self.auditor,
            fault_injector=fault_injector,
            extra_components=self.extra_components,
        )

    def run(self, jobs: Sequence[Job]) -> SimulationResult:
        """Simulate the given job stream to the configured horizon.

        Args:
            jobs: Jobs with pre-sampled arrival times and durations.
                Admission order is ``(arrival_s, job_id)``, so results
                do not depend on the caller's list order.

        Returns:
            A :class:`SimulationResult` covering the post-warm-up
            window.
        """
        ordered = sorted(
            jobs, key=lambda job: (job.arrival_s, job.job_id)
        )
        ctx = EngineContext.create(
            self.topology,
            self.params,
            self.scheduler,
            ordered,
            n_jobs_submitted=len(jobs),
        )
        if self.params.warm_start and ordered:
            _warm_start(ctx.state, ordered)
        result = Engine(self.build_components()).run(ctx)
        if not result.completed_jobs:
            raise SimulationError(
                "no jobs completed in the measurement window; increase "
                "sim_time_s or the offered load"
            )
        return result


def _warm_start(state, ordered: List[Job]) -> None:
    """Initialise the thermal field at the load-consistent fixed point.

    The sink chain converges stage by stage along the airflow direction
    (each position needs a few sink time constants after its upwind
    neighbours settle), so a cold start needs a horizon of dozens of
    time constants — affordable in the paper's 30-minute runs, not in
    scaled ones.  We instead solve the steady state for a *uniform*
    placement at the offered utilisation (leakage iterated to a fixed
    point) and start there; the warm-up window then relaxes the field
    to the scheduler-specific distribution.
    """
    from ..workloads.benchmark import profile_for
    from ..workloads.power_model import LEAKAGE_TDP_FRACTION
    from .steady_state import solve_steady_state

    topology = state.topology
    params = state.params
    n = topology.n_sockets
    horizon = params.sim_time_s
    total_work_s = sum(job.work_ms for job in ordered) / 1000.0
    utilization = min(total_work_s / (horizon * n), 1.0)

    sustained = float(state.ladder.sustained_mhz)
    max_mhz = float(state.ladder.max_mhz)
    apps = [job.app for job in ordered[:512]]
    dyn_max = (
        float(np.mean([app.power_at_max_w for app in apps]))
        - LEAKAGE_TDP_FRACTION * topology.tdp_array
    )
    dyn_exp = float(
        np.mean(
            [
                profile_for(app.benchmark_set).dynamic_exponent
                for app in apps
            ]
        )
    )
    dyn_sustained = dyn_max * (sustained / max_mhz) ** dyn_exp

    field = solve_steady_state(
        topology,
        params,
        dyn_sustained,
        np.full(n, utilization),
    )
    state.thermal.sink_c = field.sink_c.copy()
    state.thermal.chip_c = field.chip_c.copy()
    state.ambient_c = field.ambient_c.copy()
    state.history_c = field.chip_c.copy()
    state.busy_ema = np.full(n, utilization)

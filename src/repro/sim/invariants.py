"""Runtime invariant auditing for simulation runs.

The engine advances thousands of vectorised steps per run; a silent
physics bug (a NaN leaking out of a thermal update, a power excursion
past the TDP envelope, work retiring twice) can corrupt every metric
downstream without crashing anything.  The :class:`InvariantAuditor` is
an opt-in guard hooked into :meth:`repro.sim.engine.Simulation.run`: at
a configurable step cadence it checks the physical consistency of the
full simulation state and raises a structured
:class:`InvariantViolation` (a :class:`~repro.errors.SimulationError`)
naming the step, the offending socket and the violated invariant.

Checked invariants:

- every temperature, power and work value is finite;
- temperatures are ordered along the heat path: ``inlet <= ambient``
  exactly (coupling only ever heats the air) and
  ``ambient <= sink + lag`` / ``sink <= chip + lag`` within a
  thermal-mass lag tolerance (the sink node may transiently trail a
  fast-moving ambient, and the chip node its target, by a bounded
  amount set by the time constants);
- per-socket power stays inside ``[gated, tdp + leakage margin]``;
- remaining work on every socket is non-negative, and idle sockets
  carry exactly zero remaining work;
- cumulative energy is monotone non-decreasing between audits.

Under a fault schedule (a :class:`repro.faults.injector.FaultState`
passed as ``faults``) the envelopes become fault-aware:

- a killed socket must draw exactly zero power (and is exempted from
  the gated floor);
- a thermally tripped socket must sit at the ladder floor once the
  trip has been latched for ``trip_response_steps`` engine steps;
- a socket continuously tripped for ``trip_recovery_taus`` heat-sink
  time constants must have cooled back below the trip temperature
  (within the lag tolerance) — the check that a broken emergency
  response cannot pass.

Auditing reads state only — it never mutates anything — so an audited
run produces bit-identical results to an unaudited one.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import SimulationError

#: Default audit cadence, in power-manager steps.
DEFAULT_INTERVAL_STEPS = 50

#: Default thermal-mass lag tolerance, degC.  The sink node relaxes with
#: a multi-second time constant while entry air can move within one
#: step, so ``sink >= ambient`` only holds up to the transient lag; the
#: same applies to chip vs its target.  5 degC comfortably bounds the
#: lag for every calibrated topology while still catching real ordering
#: bugs, which show up as tens of degrees.
DEFAULT_LAG_TOLERANCE_C = 5.0

#: Default slack on the power envelope, W.
DEFAULT_POWER_TOLERANCE_W = 0.5

#: Extra chip-temperature headroom assumed when sizing the leakage
#: margin of the power upper bound, degC.
_LEAKAGE_HEADROOM_C = 15.0

#: Absolute slack for exact (non-lag) comparisons.
_EPS = 1e-9


class InvariantViolation(SimulationError):
    """A runtime invariant failed during a simulation step.

    Attributes:
        invariant: Short name of the violated invariant.
        step: Engine step index at which the audit fired.
        socket_id: Offending socket, or ``None`` for global invariants
            (e.g. energy monotonicity).
        value: The offending value.
    """

    def __init__(
        self,
        invariant: str,
        step: int,
        socket_id: Optional[int],
        value: float,
        detail: str,
    ):
        self.invariant = invariant
        self.step = step
        self.socket_id = socket_id
        self.value = value
        self.detail = detail
        where = (
            f"socket {socket_id}" if socket_id is not None else "global"
        )
        super().__init__(
            f"invariant '{invariant}' violated at step {step} "
            f"({where}): {detail}"
        )

    def __reduce__(self):
        # Default exception pickling would replay ``args`` (the single
        # formatted message) into the five-argument constructor; rebuild
        # from the structured fields so violations cross process
        # boundaries intact.
        return (
            InvariantViolation,
            (
                self.invariant,
                self.step,
                self.socket_id,
                self.value,
                self.detail,
            ),
        )


class InvariantAuditor:
    """Periodic physical-consistency checker for one simulation run.

    An auditor is stateful: it tracks the last audited cumulative
    energy and the number of audits performed.  The engine's
    :class:`~repro.sim.pipeline.Auditor` component calls :meth:`reset`
    at every run start, so one auditor instance can safely observe
    back-to-back runs — each run is audited independently instead of
    silently inheriting the previous run's energy baseline (which
    would trip the monotonicity check or, worse, mask a regression).

    Attributes:
        interval_steps: Audit every this many engine steps.
        lag_tolerance_c: Allowed transient lag in the
            ``ambient <= sink <= chip`` ordering, degC.
        power_tolerance_w: Slack on the per-socket power envelope, W.
        n_audits: Number of audits performed in the current run.
    """

    def __init__(
        self,
        interval_steps: int = DEFAULT_INTERVAL_STEPS,
        lag_tolerance_c: float = DEFAULT_LAG_TOLERANCE_C,
        power_tolerance_w: float = DEFAULT_POWER_TOLERANCE_W,
    ):
        if interval_steps < 1:
            raise SimulationError(
                f"audit interval must be >= 1 step, got {interval_steps}"
            )
        if lag_tolerance_c < 0 or power_tolerance_w < 0:
            raise SimulationError("audit tolerances must be non-negative")
        self.interval_steps = interval_steps
        self.lag_tolerance_c = lag_tolerance_c
        self.power_tolerance_w = power_tolerance_w
        self.n_audits = 0
        self._last_energy_j = 0.0

    def reset(self) -> None:
        """Forget per-run state (audit count, energy baseline).

        Called by the engine at run start; also safe to call manually
        between hand-driven :meth:`check` sequences.
        """
        self.n_audits = 0
        self._last_energy_j = 0.0

    def check(
        self,
        state,
        step: int,
        energy_j: float,
        airflow_scale: float = 1.0,
        faults=None,
    ) -> None:
        """Audit the state after engine step ``step``.

        Args:
            state: The engine's :class:`~repro.sim.state.
                SimulationState`.
            step: Current step index (for error context).
            energy_j: Cumulative measured energy so far, joules.
            airflow_scale: Relative airflow this step (1.0 without fan
                control).  Slowed airflow amplifies every entry-air
                rise by ``1/scale``, so the sink-lag check compares
                the sink against the rise *at design airflow* — the
                regime the lag tolerance is calibrated for.
            faults: Optional :class:`repro.faults.injector.FaultState`
                of the run; enables the fault-aware envelopes (dead
                sockets hold zero power, tripped sockets respect the
                emergency-throttle response).

        Raises:
            InvariantViolation: on the first violated invariant.
        """
        topology = state.topology
        params = state.params
        chip = state.chip_c
        sink = state.sink_c
        ambient = state.ambient_c
        power = state.power_w
        remaining = state.remaining_work_ms

        self._check_finite("chip temperature", chip, step)
        self._check_finite("sink temperature", sink, step)
        self._check_finite("ambient temperature", ambient, step)
        self._check_finite("power", power, step)
        self._check_finite("remaining work", remaining, step)

        self._check_lower(
            "ambient >= inlet", ambient, params.inlet_c - _EPS, step
        )
        lag = self.lag_tolerance_c
        degraded = faults is not None and faults.airflow_degraded
        if airflow_scale < 1.0 or degraded:
            # Rises above inlet scale as 1/airflow; the sink tracks
            # them with the same lag either way, so bound it by the
            # design-airflow ambient.  Degraded fan lanes divide their
            # sockets' rises by a further per-socket factor.
            rise = (ambient - params.inlet_c) * airflow_scale
            if degraded:
                rise = rise * faults.airflow_factor
            design_ambient = params.inlet_c + rise
        else:
            design_ambient = ambient
        self._check_pair(
            "sink >= ambient - lag", sink, design_ambient - lag, step
        )
        self._check_pair("chip >= sink - lag", chip, sink - lag, step)

        tol = self.power_tolerance_w
        gated = topology.gated_power_array
        upper = self._power_upper_bound(topology, params)
        low_bad = power < gated - tol
        if faults is not None:
            # Killed sockets legitimately sit below the gated floor —
            # they must instead hold *exactly* zero (checked below).
            low_bad &= faults.alive
        if low_bad.any():
            socket = int(np.argmax(low_bad))
            raise InvariantViolation(
                "power >= gated",
                step,
                socket,
                float(power[socket]),
                f"power {power[socket]:.3f} W below gated floor "
                f"{gated[socket]:.3f} W",
            )
        high_bad = power > upper + tol
        if high_bad.any():
            socket = int(np.argmax(high_bad))
            raise InvariantViolation(
                "power <= tdp + leakage margin",
                step,
                socket,
                float(power[socket]),
                f"power {power[socket]:.3f} W exceeds envelope "
                f"{upper[socket]:.3f} W",
            )

        neg = remaining < -_EPS
        if neg.any():
            socket = int(np.argmax(neg))
            raise InvariantViolation(
                "remaining work >= 0",
                step,
                socket,
                float(remaining[socket]),
                f"remaining work {remaining[socket]:.6f} ms is negative",
            )
        idle_with_work = (~state.busy) & (np.abs(remaining) > _EPS)
        if idle_with_work.any():
            socket = int(np.argmax(idle_with_work))
            raise InvariantViolation(
                "idle sockets carry no work",
                step,
                socket,
                float(remaining[socket]),
                f"idle socket holds {remaining[socket]:.6f} ms of work",
            )

        if faults is not None:
            self._check_fault_envelopes(state, step, faults)

        if energy_j < self._last_energy_j - _EPS:
            raise InvariantViolation(
                "energy monotone",
                step,
                None,
                float(energy_j),
                f"cumulative energy fell from {self._last_energy_j:.6f} "
                f"to {energy_j:.6f} J",
            )
        self._last_energy_j = energy_j
        self.n_audits += 1

    def _check_fault_envelopes(self, state, step: int, faults) -> None:
        """The degraded-operation envelopes (see module docstring)."""
        power = state.power_w
        dead = ~faults.alive
        dead_hot = dead & (np.abs(power) > _EPS)
        if dead_hot.any():
            socket = int(np.argmax(dead_hot))
            raise InvariantViolation(
                "dead sockets draw zero power",
                step,
                socket,
                float(power[socket]),
                f"killed socket draws {power[socket]:.6f} W",
            )

        tripped = faults.tripped
        if not tripped.any():
            return
        response = faults.response
        params = state.params
        elapsed = step - faults.trip_step
        floor_due = tripped & (elapsed >= response.trip_response_steps)
        min_mhz = float(state.ladder.min_mhz)
        floor_bad = floor_due & (state.freq_mhz > min_mhz + _EPS)
        if floor_bad.any():
            socket = int(np.argmax(floor_bad))
            raise InvariantViolation(
                "tripped sockets throttle to the floor",
                step,
                socket,
                float(state.freq_mhz[socket]),
                f"socket tripped {int(elapsed[socket])} steps ago "
                f"still runs at {state.freq_mhz[socket]:.0f} MHz "
                f"(floor {min_mhz:.0f} MHz)",
            )

        dt = params.power_manager_interval_s
        recovery_steps = int(
            np.ceil(
                response.trip_recovery_taus * params.socket_tau_s / dt
            )
        )
        recovered_due = tripped & (elapsed >= recovery_steps)
        limit = faults.trip_c + self.lag_tolerance_c
        recover_bad = recovered_due & (state.chip_c > limit)
        if recover_bad.any():
            socket = int(np.argmax(recover_bad))
            raise InvariantViolation(
                "tripped sockets cool below the trip point",
                step,
                socket,
                float(state.chip_c[socket]),
                f"socket tripped {int(elapsed[socket])} steps ago "
                f"still at {state.chip_c[socket]:.2f} degC "
                f"(envelope {limit:.2f} degC)",
            )

    @staticmethod
    def _power_upper_bound(topology, params) -> np.ndarray:
        """Per-socket power envelope: TDP plus a hot-leakage margin."""
        from ..workloads.power_model import leakage_power

        tdp = topology.tdp_array
        margin = leakage_power(
            params.temperature_limit_c + _LEAKAGE_HEADROOM_C, 1.0
        )
        return tdp * (1.0 + margin)

    @staticmethod
    def _check_finite(
        name: str, values: np.ndarray, step: int
    ) -> None:
        bad = ~np.isfinite(values)
        if bad.any():
            socket = int(np.argmax(bad))
            raise InvariantViolation(
                f"finite {name}",
                step,
                socket,
                float(values[socket]),
                f"{name} is {values[socket]}",
            )

    @staticmethod
    def _check_lower(
        name: str, values: np.ndarray, floor: float, step: int
    ) -> None:
        bad = values < floor
        if bad.any():
            socket = int(np.argmax(bad))
            raise InvariantViolation(
                name,
                step,
                socket,
                float(values[socket]),
                f"value {values[socket]:.4f} below bound {floor:.4f}",
            )

    @staticmethod
    def _check_pair(
        name: str,
        values: np.ndarray,
        bounds: np.ndarray,
        step: int,
    ) -> None:
        bad = values < bounds
        if bad.any():
            socket = int(np.argmax(bad))
            raise InvariantViolation(
                name,
                step,
                socket,
                float(values[socket]),
                f"value {values[socket]:.4f} below bound "
                f"{bounds[socket]:.4f}",
            )

"""Content fingerprints of simulation results for bit-identity tests.

The engine's strongest regression oracle is *bit-identity*: a refactor
(or an inert feature such as an empty fault schedule) must reproduce
the exact float trajectory of the run it claims not to change.  This
module condenses one :class:`~repro.sim.results.SimulationResult` into
a SHA-256 digest over every deterministic field — the raw IEEE-754
bytes of each metric array, scalar energies, and the full
``(job_id, socket, start, finish)`` completion record — so two runs
match iff every one of those bits matches.

Excluded from the digest: the trace object (an optional observer) and
the topology/params references (inputs, not outputs).  The fault
summary is included when present, so a faulted run can also be pinned.
"""

from __future__ import annotations

import hashlib

import numpy as np

from .results import SimulationResult


def result_fingerprint(
    result: SimulationResult, include_fault_summary: bool = True
) -> str:
    """SHA-256 hex digest over every deterministic result field.

    Args:
        include_fault_summary: Cover ``result.fault_summary`` when
            present.  The bit-identity oracle comparing an *empty*
            fault schedule against a fault-free run passes ``False``
            here — the empty schedule legitimately attaches an (inert)
            summary, and the claim under test is that the *trajectory*
            is untouched.
    """
    digest = hashlib.sha256()

    def scalar(value: float) -> None:
        digest.update(np.float64(value).tobytes())

    def array(values: np.ndarray) -> None:
        digest.update(np.ascontiguousarray(values, dtype=float).tobytes())

    digest.update(result.scheduler_name.encode())
    scalar(result.energy_j)
    scalar(result.cooling_energy_j)
    scalar(result.mean_airflow_scale)
    scalar(result.measured_span_s)
    digest.update(
        repr(
            (
                result.n_jobs_submitted,
                result.max_queue_length,
                result.n_migrations,
            )
        ).encode()
    )
    array(result.work_done)
    array(result.busy_time_s)
    array(result.freq_time_product)
    array(result.boost_time_s)
    array(result.max_chip_c)
    for job in result.completed_jobs:
        digest.update(repr((job.job_id, job.socket_id)).encode())
        scalar(job.arrival_s)
        scalar(job.start_s)
        scalar(job.finish_s)
    if include_fault_summary and result.fault_summary is not None:
        digest.update(repr(sorted(result.fault_summary.items())).encode())
    return digest.hexdigest()


def decision_fingerprint(
    result: SimulationResult, include_fault_summary: bool = True
) -> str:
    """SHA-256 digest over every *decision-determined* result field.

    The oracle behind the multi-rate stepping driver
    (:mod:`repro.sim.multirate`): it covers exactly the fields that are
    a deterministic function of the run's discrete decision stream —
    placements, frequency selections, migrations, trips, completions.
    During an all-idle window a fixed-step engine adds exact ``+0.0``
    to the work / busy / frequency / boost accumulators and touches no
    completion record, so these fields match *bit-for-bit* between
    fixed and adaptive stepping iff every discrete decision matched.

    Excluded (relative to :func:`result_fingerprint`) are the
    continuous-time integrals and extrema that accumulate real-valued
    contributions inside windows — ``energy_j``, ``cooling_energy_j``,
    ``mean_airflow_scale`` and ``max_chip_c``.  Those carry the
    documented bounded error (epsilon) and are pinned separately with
    tolerances by the differential harness.
    """
    digest = hashlib.sha256()

    def scalar(value: float) -> None:
        digest.update(np.float64(value).tobytes())

    def array(values: np.ndarray) -> None:
        digest.update(np.ascontiguousarray(values, dtype=float).tobytes())

    digest.update(result.scheduler_name.encode())
    scalar(result.measured_span_s)
    digest.update(
        repr(
            (
                result.n_jobs_submitted,
                result.max_queue_length,
                result.n_migrations,
            )
        ).encode()
    )
    array(result.work_done)
    array(result.busy_time_s)
    array(result.freq_time_product)
    array(result.boost_time_s)
    for job in result.completed_jobs:
        digest.update(repr((job.job_id, job.socket_id)).encode())
        scalar(job.arrival_s)
        scalar(job.start_s)
        scalar(job.finish_s)
    if include_fault_summary and result.fault_summary is not None:
        digest.update(repr(sorted(result.fault_summary.items())).encode())
    return digest.hexdigest()

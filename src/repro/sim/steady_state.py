"""Closed-form steady-state thermal field solver.

For a given per-socket average power vector, the coupled server's
steady state is directly computable (no time stepping): in equilibrium
every sink passes exactly its socket's power into the air stream, so

- entry temperatures: ``T_amb = T_inlet + M @ P``  (coupling matrix),
- sink temperatures:  ``T_sink = T_amb + P * R_ext``,
- chip temperatures:  ``T_chip = T_sink + P * R_int + theta(P)``,

with leakage iterated to a fixed point (power depends on chip
temperature, which depends on power).  The engine uses this to
warm-start scaled runs; it is also useful on its own for capacity
planning — e.g. "at which uniform utilisation does zone 6 start
throttling?".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..backend import numpy_xp as np
from ..config.parameters import SimulationParameters
from ..errors import SimulationError
from ..server.topology import ServerTopology
from ..workloads.power_model import leakage_power

#: Fixed-point iterations for the leakage-power loop.
LEAKAGE_ITERATIONS = 4


@dataclass(frozen=True)
class SteadyStateField:
    """Equilibrium thermal field for one power distribution.

    Attributes:
        power_w: Per-socket average power used, W.
        ambient_c: Entry air temperature per socket, degC.
        sink_c: Heat-sink temperature per socket, degC.
        chip_c: Chip temperature per socket, degC.
    """

    power_w: np.ndarray
    ambient_c: np.ndarray
    sink_c: np.ndarray
    chip_c: np.ndarray

    @property
    def hottest_socket(self) -> int:
        """Index of the hottest chip."""
        return int(np.argmax(self.chip_c))

    def throttled_mask(self, limit_c: float = 95.0) -> np.ndarray:
        """Sockets whose steady chip temperature exceeds a limit."""
        return self.chip_c > limit_c


def solve_steady_state(
    topology: ServerTopology,
    params: SimulationParameters,
    dynamic_power_w: np.ndarray,
    utilization: Optional[np.ndarray] = None,
    initial_chip_c: Optional[np.ndarray] = None,
) -> SteadyStateField:
    """Solve the equilibrium field for a power distribution.

    Args:
        topology: Server geometry (provides the coupling matrix and
            per-socket sink constants).
        params: Simulation parameters (inlet temperature, R_int).
        dynamic_power_w: Per-socket dynamic power while busy, W.
        utilization: Optional per-socket busy fraction in [0, 1];
            sockets draw the gated power while idle.  Defaults to fully
            busy.
        initial_chip_c: Optional chip-temperature field to start the
            leakage fixed-point iteration from (warm start).  Sweeps
            that step through nearby power vectors converge from a
            neighbouring solution in fewer effective iterations.  The
            default (a uniform 60 degC field) preserves the historical
            results bit for bit.

    Returns:
        The converged :class:`SteadyStateField`.

    Raises:
        SimulationError: for shape mismatches or out-of-range
            utilisation.
    """
    n = topology.n_sockets
    dynamic = np.asarray(dynamic_power_w, dtype=float)
    if dynamic.shape != (n,):
        raise SimulationError(
            f"expected dynamic power of shape ({n},), got {dynamic.shape}"
        )
    if utilization is None:
        utilization = np.ones(n)
    utilization = np.asarray(utilization, dtype=float)
    if utilization.shape != (n,):
        raise SimulationError(
            f"expected utilisation of shape ({n},), got "
            f"{utilization.shape}"
        )
    if ((utilization < 0) | (utilization > 1)).any():
        raise SimulationError("utilisation must lie in [0, 1]")

    r_ext = topology.r_ext_array
    theta_off = topology.theta_offset_array
    theta_slope = topology.theta_slope_array
    tdp = topology.tdp_array
    gated = topology.gated_power_array
    coupling = topology.coupling

    if initial_chip_c is None:
        chip = np.full(n, 60.0)
    else:
        chip = np.asarray(initial_chip_c, dtype=float)
        if chip.shape != (n,):
            raise SimulationError(
                f"expected initial chip field of shape ({n},), got "
                f"{chip.shape}"
            )
    power = gated.copy()
    ambient = np.full(n, params.inlet_c)
    sink = ambient.copy()
    for _ in range(LEAKAGE_ITERATIONS):
        leak = leakage_power(chip, 1.0) * tdp
        busy_power = dynamic + leak
        power = utilization * busy_power + (1.0 - utilization) * gated
        ambient = coupling.entry_temperatures(params.inlet_c, power)
        sink = ambient + power * r_ext
        theta = theta_off + theta_slope * power
        chip = sink + power * params.r_int + theta
    return SteadyStateField(
        power_w=power, ambient_c=ambient, sink_c=sink, chip_c=chip
    )


def uniform_load_field(
    topology: ServerTopology,
    params: SimulationParameters,
    utilization: float,
    dynamic_power_w: float,
) -> SteadyStateField:
    """Steady state with every socket at the same duty and power."""
    if not 0.0 <= utilization <= 1.0:
        raise SimulationError("utilisation must lie in [0, 1]")
    if dynamic_power_w < 0:
        raise SimulationError("dynamic power must be non-negative")
    n = topology.n_sockets
    return solve_steady_state(
        topology,
        params,
        np.full(n, dynamic_power_w),
        np.full(n, utilization),
    )

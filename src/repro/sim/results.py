"""Simulation results and derived per-run statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..config.parameters import SimulationParameters
from ..errors import SimulationError
from ..server.topology import ServerTopology
from ..workloads.job import Job


@dataclass
class SimulationResult:
    """Everything measured during one simulation run.

    All array metrics cover the measurement window only (after warm-up).

    Attributes:
        scheduler_name: Policy that produced this run.
        params: Parameters the run used.
        topology: Topology the run used.
        completed_jobs: Jobs that finished inside the measurement
            window.
        n_jobs_submitted: Jobs offered to the system over the full run.
        energy_j: Total server energy over the window, joules.
        work_done: Work units retired per socket over the window (one
            unit = one millisecond at the top frequency).
        busy_time_s: Seconds each socket spent busy.
        freq_time_product: Per-socket integral of relative frequency
            over busy time (divide by ``busy_time_s`` for the average
            relative frequency).
        boost_time_s: Seconds each socket spent in a boost state.
        max_chip_c: Hottest chip temperature ever observed per socket.
        measured_span_s: Length of the measurement window, seconds.
        max_queue_length: Largest scheduler queue depth observed.
        n_migrations: Job migrations performed (0 without a migration
            policy).
        cooling_energy_j: Fan energy over the window, joules (0 without
            a fan controller).
        mean_airflow_scale: Time-averaged relative airflow (1.0 means
            the fixed design airflow).
        fault_summary: Digest of the run's fault activity (schedule
            fingerprint, trips, evictions), or ``None`` for fault-free
            runs.
        profile: Per-component wall-clock accounting
            (:class:`repro.obs.profiler.RunProfile`), or ``None`` when
            the run was not profiled.  Excluded from result
            fingerprints — wall-clock is not part of the trajectory.
        stepping: Stepping-driver summary (mode, steps executed vs
            skipped, window counts; see
            :class:`repro.sim.multirate.MultiRateEngine`), or ``None``
            for plain fixed-step runs.  Excluded from result
            fingerprints — how the clock advanced is not part of the
            trajectory.
    """

    scheduler_name: str
    params: SimulationParameters
    topology: ServerTopology
    completed_jobs: List[Job] = field(default_factory=list)
    n_jobs_submitted: int = 0
    energy_j: float = 0.0
    work_done: Optional[np.ndarray] = None
    busy_time_s: Optional[np.ndarray] = None
    freq_time_product: Optional[np.ndarray] = None
    boost_time_s: Optional[np.ndarray] = None
    max_chip_c: Optional[np.ndarray] = None
    measured_span_s: float = 0.0
    max_queue_length: int = 0
    n_migrations: int = 0
    cooling_energy_j: float = 0.0
    mean_airflow_scale: float = 1.0
    trace: Optional[object] = None
    fault_summary: Optional[dict] = None
    profile: Optional[object] = None
    stepping: Optional[dict] = None

    def __post_init__(self) -> None:
        n = self.topology.n_sockets
        if self.work_done is None:
            self.work_done = np.zeros(n)
        if self.busy_time_s is None:
            self.busy_time_s = np.zeros(n)
        if self.freq_time_product is None:
            self.freq_time_product = np.zeros(n)
        if self.boost_time_s is None:
            self.boost_time_s = np.zeros(n)
        if self.max_chip_c is None:
            self.max_chip_c = np.full(n, -np.inf)

    @property
    def n_jobs_completed(self) -> int:
        """Number of jobs completed inside the window."""
        return len(self.completed_jobs)

    @property
    def mean_runtime_expansion(self) -> float:
        """Average runtime expansion across completed jobs.

        The paper's primary metric (Figure 11, lower is better): service
        time divided by the job's nominal duration at the top frequency.

        Raises:
            SimulationError: if no job completed in the window.
        """
        if not self.completed_jobs:
            raise SimulationError("no jobs completed in the window")
        return float(
            np.mean([job.runtime_expansion for job in self.completed_jobs])
        )

    @property
    def performance(self) -> float:
        """Throughput-style performance score (higher is better).

        Defined as the inverse of the mean runtime expansion, so a run
        whose jobs expand 10% less scores ~10% higher — the quantity
        Figure 14 reports relative to CF.
        """
        return 1.0 / self.mean_runtime_expansion

    @property
    def mean_response_time_s(self) -> float:
        """Mean arrival-to-completion time, seconds."""
        if not self.completed_jobs:
            raise SimulationError("no jobs completed in the window")
        return float(
            np.mean([job.response_time_s for job in self.completed_jobs])
        )

    @property
    def average_power_w(self) -> float:
        """Mean server power over the window, W."""
        if self.measured_span_s <= 0:
            raise SimulationError("measurement window is empty")
        return self.energy_j / self.measured_span_s

    @property
    def utilization(self) -> float:
        """Fraction of socket-time spent busy over the window."""
        if self.measured_span_s <= 0:
            raise SimulationError("measurement window is empty")
        total = self.topology.n_sockets * self.measured_span_s
        return float(self.busy_time_s.sum()) / total

    @property
    def total_energy_j(self) -> float:
        """Compute plus cooling energy over the window, joules."""
        return self.energy_j + self.cooling_energy_j

    @property
    def ed2_j_s2(self) -> float:
        """Energy-delay-squared product (J * expansion^2).

        The delay term is the mean runtime expansion, making the metric
        workload-size independent; Figure 15 reports it relative to CF.
        """
        return self.energy_j * self.mean_runtime_expansion**2

    def average_relative_frequency(
        self, mask: Optional[np.ndarray] = None
    ) -> float:
        """Busy-time-weighted average frequency relative to the maximum.

        Args:
            mask: Optional boolean socket mask restricting the average
                (e.g. front half, even zones).

        Returns:
            Average of (frequency / max frequency) over busy time within
            the masked sockets, or ``nan`` if they were never busy.
        """
        if mask is None:
            mask = np.ones(self.topology.n_sockets, dtype=bool)
        busy = float(self.busy_time_s[mask].sum())
        if busy <= 0:
            return float("nan")
        return float(self.freq_time_product[mask].sum()) / busy

    def work_fraction(self, mask: np.ndarray) -> float:
        """Fraction of total retired work done by the masked sockets."""
        total = float(self.work_done.sum())
        if total <= 0:
            return 0.0
        return float(self.work_done[mask].sum()) / total

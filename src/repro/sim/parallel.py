"""Parallel sweep execution over a process pool, with memoisation.

Every figure in the paper is a sweep over (scheduler x benchmark set x
load) and each point is an independent simulation, so the sweep is
embarrassingly parallel.  This module fans the points of a sweep out
over a :class:`concurrent.futures.ProcessPoolExecutor` while keeping
the results bit-identical to serial execution:

- each point's workload stream is derived deterministically from the
  simulation parameters' seed (never from worker identity, submission
  order or wall-clock), so a point computes the same result no matter
  which process runs it or when;
- results are collected back in submission order;
- execution falls back to the plain serial loop when ``max_workers <=
  1``, when there is only one point to run, when the platform cannot
  ``fork`` (the only start method that is both cheap and inherits the
  loaded modules), or when the pool fails to come up.

A process-wide :class:`SweepCache` memoises results keyed on the full
configuration (topology, parameters, scheduler name, benchmark set,
load), so repeated figure runs in one process — e.g. Figure 14 and
Figure 15 share their entire grid — skip identical configurations.
Cached results are returned by reference; callers must treat
:class:`~repro.sim.results.SimulationResult` objects as read-only
(which every experiment already does).
"""

from __future__ import annotations

import hashlib
import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from ..config.parameters import SimulationParameters
from ..server.topology import ServerTopology
from ..workloads.benchmark import BenchmarkSet
from .invariants import DEFAULT_INTERVAL_STEPS
from .results import SimulationResult

#: One sweep point: (scheduler name, benchmark set, load).
SweepPoint = Tuple[str, BenchmarkSet, float]


def topology_token(topology: ServerTopology) -> bytes:
    """A stable byte string identifying a topology's full geometry.

    Two topologies with equal tokens produce identical simulations for
    equal parameters: the token covers the grid shape, the processor,
    the per-socket sink arrays and the assembled coupling matrix.
    """
    scalars = (
        type(topology).__name__,
        topology.n_rows,
        topology.lanes_per_row,
        topology.chain_length,
        topology.sockets_per_cartridge_depth,
        topology.socket_airflow_cfm,
        topology.mixing_factor,
        topology.intra_cartridge_decay,
        topology.inter_cartridge_decay,
        repr(topology.processor),
    )
    parts = [repr(scalars).encode()]
    for array in (
        topology.r_ext_array,
        topology.theta_offset_array,
        topology.theta_slope_array,
        topology.tdp_array,
        topology.gated_power_array,
        topology.coupling.matrix,
    ):
        parts.append(array.tobytes())
    return b"|".join(parts)


def config_key(
    topology: ServerTopology,
    params: SimulationParameters,
    scheduler_name: str,
    benchmark_set: BenchmarkSet,
    load: float,
) -> str:
    """Memo-cache key for one fully specified sweep point."""
    digest = hashlib.sha256()
    digest.update(topology_token(topology))
    digest.update(repr(params).encode())
    digest.update(
        f"|{scheduler_name}|{benchmark_set.value}|{load!r}".encode()
    )
    return digest.hexdigest()


class SweepCache:
    """Process-local memo cache for sweep results.

    Attributes:
        hits: Lookups answered from the cache.
        misses: Lookups that fell through to a simulation run.
    """

    def __init__(self):
        self._store: Dict[str, SimulationResult] = {}
        self.hits = 0
        self.misses = 0

    def get(self, key: str) -> Optional[SimulationResult]:
        """The cached result for ``key``, counting the lookup."""
        result = self._store.get(key)
        if result is None:
            self.misses += 1
        else:
            self.hits += 1
        return result

    def put(self, key: str, result: SimulationResult) -> None:
        """Store a result under its configuration key."""
        self._store[key] = result

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters."""
        self._store.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)


#: Shared per-process cache used by ``use_cache=True`` sweeps.
shared_cache = SweepCache()


def clear_shared_cache() -> None:
    """Empty the process-wide sweep cache (tests, memory pressure)."""
    shared_cache.clear()


def _run_point(
    topology: ServerTopology,
    params: SimulationParameters,
    point: SweepPoint,
    audit: bool,
    audit_interval: int,
) -> SimulationResult:
    """Execute one sweep point; runs in workers and in the serial path.

    The scheduler is constructed *inside* the executing process from its
    registered name, so stateful policies always start fresh and no
    policy object ever crosses a process boundary.
    """
    from ..core import get_scheduler  # local import: avoids cycle
    from .runner import run_once

    name, benchmark_set, load = point
    auditor = None
    if audit:
        from .invariants import InvariantAuditor

        auditor = InvariantAuditor(interval_steps=audit_interval)
    return run_once(
        topology,
        params,
        get_scheduler(name),
        benchmark_set,
        load,
        auditor=auditor,
    )


def _fork_available() -> bool:
    """Whether the cheap ``fork`` start method exists on this platform."""
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - exotic platforms
        return False


def execute_sweep(
    topology: ServerTopology,
    params: SimulationParameters,
    points: Sequence[SweepPoint],
    max_workers: int = 1,
    audit: bool = False,
    audit_interval: int = DEFAULT_INTERVAL_STEPS,
    cache: Optional[SweepCache] = None,
) -> List[SimulationResult]:
    """Run every sweep point, in parallel where possible.

    Args:
        topology: Server geometry shared by every point.
        params: Simulation parameters shared by every point (each
            point's workload is re-derived from ``params.seed``, so
            results are independent of execution order).
        points: The (scheduler name, benchmark set, load) grid.
        max_workers: Process count; ``1`` forces the serial path.
        audit: Run each point under a fresh
            :class:`~repro.sim.invariants.InvariantAuditor`.
        audit_interval: Audit cadence in engine steps.
        cache: Optional memo cache consulted before and filled after
            execution.

    Returns:
        One :class:`~repro.sim.results.SimulationResult` per point, in
        the order given.

    Raises:
        SimulationError: propagated from any point (including
            :class:`~repro.sim.invariants.InvariantViolation` raised
            inside a worker process).
    """
    results: List[Optional[SimulationResult]] = [None] * len(points)
    pending: List[int] = []
    keys: List[Optional[str]] = [None] * len(points)
    for i, point in enumerate(points):
        if cache is not None:
            keys[i] = config_key(topology, params, *point)
            hit = cache.get(keys[i])
            if hit is not None:
                results[i] = hit
                continue
        pending.append(i)

    if pending:
        workers = min(int(max_workers), len(pending))
        if workers > 1 and _fork_available():
            computed = _run_pool(
                topology,
                params,
                [points[i] for i in pending],
                workers,
                audit,
                audit_interval,
            )
        else:
            computed = [
                _run_point(
                    topology, params, points[i], audit, audit_interval
                )
                for i in pending
            ]
        for i, result in zip(pending, computed):
            results[i] = result
            if cache is not None:
                cache.put(keys[i], result)
    return results  # type: ignore[return-value]


def _run_pool(
    topology: ServerTopology,
    params: SimulationParameters,
    points: Sequence[SweepPoint],
    workers: int,
    audit: bool,
    audit_interval: int,
) -> List[SimulationResult]:
    """Fan points out over a fork-based process pool, in order.

    Falls back to the serial loop if the pool cannot be created (e.g.
    sandboxes that expose ``fork`` but forbid new processes).
    """
    context = multiprocessing.get_context("fork")
    try:
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=context
        ) as pool:
            futures = [
                pool.submit(
                    _run_point,
                    topology,
                    params,
                    point,
                    audit,
                    audit_interval,
                )
                for point in points
            ]
            return [future.result() for future in futures]
    except (OSError, PermissionError):
        return [
            _run_point(topology, params, point, audit, audit_interval)
            for point in points
        ]

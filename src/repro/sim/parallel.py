"""Parallel sweep execution over a process pool, with memoisation.

Every figure in the paper is a sweep over (scheduler x benchmark set x
load) and each point is an independent simulation, so the sweep is
embarrassingly parallel.  This module fans the points of a sweep out
over a :class:`concurrent.futures.ProcessPoolExecutor` while keeping
the results bit-identical to serial execution:

- each point's workload stream is derived deterministically from the
  simulation parameters' seed (never from worker identity, submission
  order or wall-clock), so a point computes the same result no matter
  which process runs it or when;
- results are collected back in submission order;
- execution falls back to the plain serial loop when ``max_workers <=
  1``, when there is only one point to run, when the platform cannot
  ``fork`` (the only start method that is both cheap and inherits the
  loaded modules), or when the pool fails to come up.

The pool path is additionally *crash-resilient*: a worker that dies
(OOM kill, segfault) breaks the pool, and the harness rebuilds it and
retries only the unfinished points, with exponential backoff, up to
``max_retries`` rounds before falling back to in-process serial
execution for whatever is left.  Deterministic failures — anything in
the :class:`~repro.errors.ReproError` hierarchy, such as an
:class:`~repro.sim.invariants.InvariantViolation` — propagate
immediately: re-running a deterministic simulation cannot change its
outcome.  An optional per-point ``timeout_s`` bounds hung workers.

A process-wide :class:`SweepCache` memoises results keyed on the full
configuration (topology, parameters, scheduler name, benchmark set,
load, fault schedule), so repeated figure runs in one process — e.g.
Figure 14 and Figure 15 share their entire grid — skip identical
configurations.  The cache holds at most ``REPRO_CACHE_MAX`` entries
(least-recently-used eviction), bounding sweep memory on large grids.
Cached results are returned by reference; callers must treat
:class:`~repro.sim.results.SimulationResult` objects as read-only
(which every experiment already does).  For durability *across*
processes, pass a :class:`~repro.sim.checkpoint.SweepCheckpoint`:
every finished point is persisted immediately, so an interrupted sweep
resumes bit-identically.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..config.parameters import SimulationParameters
from ..errors import ConfigurationError, ReproError, SimulationError
from ..server.topology import ServerTopology
from ..workloads.benchmark import BenchmarkSet
from .checkpoint import SweepCheckpoint
from .invariants import DEFAULT_INTERVAL_STEPS
from .results import SimulationResult

#: One sweep point: (scheduler name, benchmark set, load).
SweepPoint = Tuple[str, BenchmarkSet, float]

#: Environment variable bounding the in-process sweep cache.
ENV_CACHE_MAX = "REPRO_CACHE_MAX"

#: Default cache bound when ``REPRO_CACHE_MAX`` is unset.
DEFAULT_CACHE_MAX = 256


def topology_token(topology: ServerTopology) -> bytes:
    """A stable byte string identifying a topology's full geometry.

    Two topologies with equal tokens produce identical simulations for
    equal parameters: the token covers the grid shape, the processor,
    the per-socket sink arrays and the assembled coupling matrix.
    """
    scalars = (
        type(topology).__name__,
        topology.n_rows,
        topology.lanes_per_row,
        topology.chain_length,
        topology.sockets_per_cartridge_depth,
        topology.socket_airflow_cfm,
        topology.mixing_factor,
        topology.intra_cartridge_decay,
        topology.inter_cartridge_decay,
        repr(topology.processor),
    )
    parts = [repr(scalars).encode()]
    for array in (
        topology.r_ext_array,
        topology.theta_offset_array,
        topology.theta_slope_array,
        topology.tdp_array,
        topology.gated_power_array,
        topology.coupling.matrix,
    ):
        parts.append(array.tobytes())
    return b"|".join(parts)


def config_key(
    topology: ServerTopology,
    params: SimulationParameters,
    scheduler_name: str,
    benchmark_set: BenchmarkSet,
    load: float,
    fault_schedule=None,
    stepping: str = "fixed",
    backend: str = "numpy",
    room=None,
) -> str:
    """Memo-cache key for one fully specified sweep point.

    Args:
        fault_schedule: Optional :class:`~repro.faults.schedule.
            FaultSchedule` active for the point; its content fingerprint
            joins the key, so faulted and fault-free runs of the same
            grid point never collide in the cache or on disk.
        stepping: Engine stepping mode; joins the key only when it is
            not the default ``"fixed"``, so every pre-existing cache
            and checkpoint key is unchanged while adaptive results can
            never alias fixed ones (their epsilon-bounded thermal
            fields differ).
        backend: Array backend name; joins the key only when it is not
            the default ``"numpy"`` (which is bit-identical to the
            pre-seam engine), following the same precedent as
            ``stepping``.
        room: Optional room-layer inputs (an object exposing
            ``token() -> bytes``, e.g. :class:`~repro.room.capacity.
            RoomKey` carrying the room fingerprint — chassis mix plus
            recirculation matrix — and the CRAC setpoint).  Joins the
            key only when present, so every chassis-only key is
            unchanged while room sweeps can never alias chassis-only
            cache or checkpoint entries.
    """
    digest = hashlib.sha256()
    digest.update(topology_token(topology))
    digest.update(repr(params).encode())
    digest.update(
        f"|{scheduler_name}|{benchmark_set.value}|{load!r}".encode()
    )
    if fault_schedule is not None:
        digest.update(b"|faults:")
        digest.update(fault_schedule.fingerprint().encode())
    if stepping != "fixed":
        digest.update(f"|stepping:{stepping}".encode())
    if backend != "numpy":
        digest.update(f"|backend:{backend}".encode())
    if room is not None:
        digest.update(b"|room:")
        digest.update(room.token())
    return digest.hexdigest()


def _env_cache_max() -> Optional[int]:
    """Cache bound from ``REPRO_CACHE_MAX`` (``<= 0`` means unbounded)."""
    raw = os.environ.get(ENV_CACHE_MAX)
    if raw is None:
        return DEFAULT_CACHE_MAX
    try:
        value = int(raw)
    except ValueError as exc:
        raise ConfigurationError(
            f"{ENV_CACHE_MAX} must be an integer, got {raw!r}"
        ) from exc
    return value if value > 0 else None


class SweepCache:
    """Bounded, process-local LRU memo cache for sweep results.

    Entries are keyed by :func:`config_key`, so engine sweep results
    and room-layer solutions (:mod:`repro.room.capacity`, keyed with
    the ``room=`` inputs) share the bound without ever aliasing.

    Holds at most ``max_entries`` results, evicting the least recently
    *used* entry (both hits and inserts refresh recency) when full — a
    month-long grid of large result objects cannot grow memory without
    bound.

    Attributes:
        max_entries: Capacity; ``None`` means unbounded.
        hits: Lookups answered from the cache.
        misses: Lookups that fell through to a simulation run.
        evictions: Entries dropped to respect ``max_entries``.
    """

    def __init__(self, max_entries: Optional[int] = -1):
        if max_entries is not None and not isinstance(max_entries, int):
            raise ConfigurationError(
                f"cache max_entries must be an int or None, got "
                f"{type(max_entries).__name__} ({max_entries!r})"
            )
        if max_entries == -1:
            # The -1 sentinel defers to the environment (REPRO_CACHE_MAX,
            # default DEFAULT_CACHE_MAX); it is the only negative value
            # with a meaning.
            max_entries = _env_cache_max()
        elif max_entries is not None and max_entries < -1:
            raise ConfigurationError(
                f"cache max_entries must be positive, None (unbounded), "
                f"or the -1 sentinel (use {ENV_CACHE_MAX}); got "
                f"{max_entries}"
            )
        elif max_entries is not None and max_entries == 0:
            raise ConfigurationError(
                "cache max_entries of 0 would cache nothing; use a "
                "positive bound, or None to run unbounded"
            )
        self.max_entries = max_entries
        self._store: "OrderedDict[str, SimulationResult]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: str) -> Optional[SimulationResult]:
        """The cached result for ``key``, counting the lookup."""
        result = self._store.get(key)
        if result is None:
            self.misses += 1
        else:
            self.hits += 1
            self._store.move_to_end(key)
        return result

    def put(self, key: str, result: SimulationResult) -> None:
        """Store a result under its configuration key, evicting LRU."""
        self._store[key] = result
        self._store.move_to_end(key)
        if self.max_entries is not None:
            while len(self._store) > self.max_entries:
                self._store.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss/eviction counters."""
        self._store.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def keys(self) -> List[str]:
        """Cached keys, least recently used first."""
        return list(self._store)

    def __len__(self) -> int:
        return len(self._store)


#: Shared per-process cache used by ``use_cache=True`` sweeps.
shared_cache = SweepCache()


def clear_shared_cache() -> None:
    """Empty the process-wide sweep cache (tests, memory pressure)."""
    shared_cache.clear()


def _run_point(
    topology: ServerTopology,
    params: SimulationParameters,
    point: SweepPoint,
    audit: bool,
    audit_interval: int,
    fault_schedule=None,
    telemetry=None,
    profile: bool = False,
    point_key: Optional[str] = None,
    stepping: str = "fixed",
    multirate=None,
    backend: str = "numpy",
) -> SimulationResult:
    """Execute one sweep point; runs in workers and in the serial path.

    The scheduler is constructed *inside* the executing process from its
    registered name, so stateful policies always start fresh and no
    policy object ever crosses a process boundary.  The telemetry
    config is a frozen value object, so it crosses the fork boundary by
    construction; each point writes its own ``point-<key>`` log and
    manifest, named by the configuration key so artifacts from
    different points can never collide.
    """
    from ..core import get_scheduler  # local import: avoids cycle
    from .runner import run_once

    name, benchmark_set, load = point
    auditor = None
    if audit:
        from .invariants import InvariantAuditor

        auditor = InvariantAuditor(interval_steps=audit_interval)
    run_name = "run"
    if point_key is not None:
        run_name = f"point-{point_key[:12]}"
    return run_once(
        topology,
        params,
        get_scheduler(name),
        benchmark_set,
        load,
        auditor=auditor,
        fault_schedule=fault_schedule,
        telemetry=telemetry,
        profile=profile,
        run_name=run_name,
        stepping=stepping,
        multirate=multirate,
        backend=backend,
    )


def _fork_available() -> bool:
    """Whether the cheap ``fork`` start method exists on this platform."""
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - exotic platforms
        return False


def execute_sweep(
    topology: ServerTopology,
    params: SimulationParameters,
    points: Sequence[SweepPoint],
    max_workers: int = 1,
    audit: bool = False,
    audit_interval: int = DEFAULT_INTERVAL_STEPS,
    cache: Optional[SweepCache] = None,
    fault_schedule=None,
    timeout_s: Optional[float] = None,
    max_retries: int = 2,
    retry_backoff_s: float = 0.25,
    checkpoint: Optional[SweepCheckpoint] = None,
    telemetry=None,
    profile: bool = False,
    stepping: str = "fixed",
    multirate=None,
    backend=None,
) -> List[SimulationResult]:
    """Run every sweep point, in parallel where possible.

    Args:
        topology: Server geometry shared by every point.
        params: Simulation parameters shared by every point (each
            point's workload is re-derived from ``params.seed``, so
            results are independent of execution order).
        points: The (scheduler name, benchmark set, load) grid.
        max_workers: Process count; ``1`` forces the serial path.
        audit: Run each point under a fresh
            :class:`~repro.sim.invariants.InvariantAuditor`.
        audit_interval: Audit cadence in engine steps.
        cache: Optional memo cache consulted before and filled after
            execution.
        fault_schedule: Optional :class:`~repro.faults.schedule.
            FaultSchedule` replayed in every point (the schedule also
            joins the cache/checkpoint key).
        timeout_s: Optional per-point wall-clock bound in the pool
            path; a point that exceeds it counts as a failed attempt
            and is never retried serially (a hung simulation would hang
            the parent too).
        max_retries: Pool rounds re-attempted after worker crashes or
            timeouts before falling back to serial execution of the
            leftover points.  Deterministic
            :class:`~repro.errors.ReproError` failures are never
            retried.
        retry_backoff_s: Base of the exponential sleep between retry
            rounds.
        checkpoint: Optional :class:`~repro.sim.checkpoint.
            SweepCheckpoint`; finished points load from it up front and
            every newly computed point persists to it *immediately*, so
            a sweep killed mid-flight resumes bit-identically.  Every
            persisted point gets a ``.manifest.json`` provenance
            sidecar recording the full recipe and result fingerprint.
        telemetry: Optional :class:`~repro.obs.session.TelemetryConfig`
            (or bare directory).  The harness appends its own events
            (``sweep_start``, ``cache_hit``, ``point_done``,
            ``checkpoint_write``, ``pool_retry``, ``pool_timeout``,
            ``sweep_end``) to ``sweep.jsonl`` in that directory —
            append mode, so an interrupted-and-resumed sweep keeps one
            continuous harness log — and each executed point records
            its own per-run event log and manifest there.
        profile: Attach per-component wall-clock accounting to every
            point's ``result.profile``.
        stepping: ``"fixed"`` (default) or ``"adaptive"`` — engine
            stepping mode applied to every point (see
            :class:`~repro.sim.multirate.MultiRateEngine`).  A
            non-default mode joins the cache/checkpoint key.
        multirate: Optional :class:`~repro.sim.multirate.
            MultiRateConfig` for the adaptive driver.
        backend: Array backend applied to every point — a name from
            :data:`repro.backend.BACKEND_NAMES`, an
            :class:`~repro.backend.ArrayBackend` instance, or ``None``
            (consult ``REPRO_BACKEND``, default numpy).  Resolved once
            up front (so a bad spec fails before any work) and shipped
            to workers as its *name*, which is always picklable; a
            non-default backend joins the cache/checkpoint key.

    Returns:
        One :class:`~repro.sim.results.SimulationResult` per point, in
        the order given.

    Raises:
        SimulationError: propagated from any point (including
            :class:`~repro.sim.invariants.InvariantViolation` raised
            inside a worker process), or raised for points that
            exhausted their timeout attempts.
    """
    if max_retries < 0:
        raise ConfigurationError("max_retries must be >= 0")
    if retry_backoff_s < 0:
        raise ConfigurationError("retry_backoff_s must be >= 0")
    if timeout_s is not None and timeout_s <= 0:
        raise ConfigurationError("timeout_s must be positive")

    from ..backend import get_backend

    backend_name = get_backend(backend).name

    if telemetry is not None:
        from ..obs.session import TelemetryConfig

        telemetry = TelemetryConfig.coerce(telemetry, profile=profile)
        profile = telemetry.profile

    results: List[Optional[SimulationResult]] = [None] * len(points)
    pending: List[int] = []
    keys: List[Optional[str]] = [None] * len(points)
    need_keys = (
        cache is not None
        or checkpoint is not None
        or telemetry is not None
    )
    for i, point in enumerate(points):
        if need_keys:
            keys[i] = config_key(
                topology,
                params,
                *point,
                fault_schedule=fault_schedule,
                stepping=stepping,
                backend=backend_name,
            )
        if cache is not None:
            hit = cache.get(keys[i])
            if hit is not None:
                results[i] = hit
                continue
        if checkpoint is not None:
            loaded = checkpoint.load(keys[i])
            if loaded is not None:
                results[i] = loaded
                if cache is not None:
                    cache.put(keys[i], loaded)
                continue
        pending.append(i)

    session = None
    if telemetry is not None:
        from pathlib import Path

        from ..obs.session import TelemetrySession

        # One continuous harness log per directory: append mode keeps
        # a killed-and-resumed sweep's rounds in a single stream.
        session = TelemetrySession(
            Path(telemetry.directory) / "sweep.jsonl",
            buffer_lines=telemetry.buffer_lines,
            append=True,
        )
        session.emit(
            "sweep_start",
            n_points=len(points),
            n_resolved=len(points) - len(pending),
        )
        for i in range(len(points)):
            if results[i] is not None:
                session.emit("cache_hit", index=i, key=keys[i])

    def record(i: int, result: SimulationResult) -> None:
        results[i] = result
        if checkpoint is not None:
            from ..obs.manifest import manifest_for_point

            # Every persisted point carries its provenance sidecar, so
            # any figure built from a checkpoint directory can be
            # re-run and verified from the artifacts alone.
            manifest = manifest_for_point(
                topology,
                params,
                points[i][0],
                points[i][1],
                points[i][2],
                fault_schedule=fault_schedule,
                result=result,
                profile=result.profile,
                stepping=stepping,
            )
            checkpoint.save(keys[i], result, manifest=manifest)
            if session is not None:
                session.emit("checkpoint_write", index=i, key=keys[i])
        if cache is not None:
            cache.put(keys[i], result)
        if session is not None:
            name, benchmark_set, load = points[i]
            session.emit(
                "point_done",
                index=i,
                scheduler=name,
                benchmark_set=benchmark_set.value,
                load=float(load),
            )

    try:
        if pending:
            workers = min(int(max_workers), len(pending))
            serial = list(pending)
            if workers > 1 and _fork_available():
                serial = _run_pool(
                    topology,
                    params,
                    points,
                    pending,
                    workers,
                    audit,
                    audit_interval,
                    fault_schedule,
                    timeout_s,
                    max_retries,
                    retry_backoff_s,
                    record,
                    telemetry=telemetry,
                    profile=profile,
                    keys=keys,
                    session=session,
                    stepping=stepping,
                    multirate=multirate,
                    backend=backend_name,
                )
            for i in serial:
                record(
                    i,
                    _run_point(
                        topology,
                        params,
                        points[i],
                        audit,
                        audit_interval,
                        fault_schedule,
                        telemetry=telemetry,
                        profile=profile,
                        point_key=keys[i],
                        stepping=stepping,
                        multirate=multirate,
                        backend=backend_name,
                    ),
                )
        if session is not None:
            session.emit("sweep_end", n_points=len(points))
    finally:
        if session is not None:
            session.close()
    return results  # type: ignore[return-value]


def _run_pool(
    topology: ServerTopology,
    params: SimulationParameters,
    points: Sequence[SweepPoint],
    pending: Sequence[int],
    workers: int,
    audit: bool,
    audit_interval: int,
    fault_schedule,
    timeout_s: Optional[float],
    max_retries: int,
    retry_backoff_s: float,
    record: Callable[[int, SimulationResult], None],
    telemetry=None,
    profile: bool = False,
    keys: Optional[Sequence[Optional[str]]] = None,
    session=None,
    stepping: str = "fixed",
    multirate=None,
    backend: str = "numpy",
) -> List[int]:
    """Fan points out over a fork-based process pool, with recovery.

    Runs up to ``1 + max_retries`` pool rounds.  Each round submits
    every still-unfinished point; successes are recorded immediately
    (checkpoint durability), deterministic :class:`ReproError` failures
    propagate, and crash-type failures (broken pool, timeout, pickling
    trouble) leave the point for the next round.  Returns the indices
    still unfinished after the last round, for the caller's serial
    fallback — except points that *timed out*, which raise instead:
    a simulation that outlived its budget in a worker would also hang
    the parent process.
    """
    context = multiprocessing.get_context("fork")
    remaining: List[int] = list(pending)
    timed_out: Dict[int, int] = {}
    for round_no in range(1 + max_retries):
        if not remaining:
            break
        if round_no:
            if session is not None:
                session.emit(
                    "pool_retry",
                    round=round_no,
                    remaining=len(remaining),
                )
            if retry_backoff_s > 0:
                time.sleep(retry_backoff_s * 2 ** (round_no - 1))
        try:
            pool = ProcessPoolExecutor(
                max_workers=min(workers, len(remaining)),
                mp_context=context,
            )
        except (OSError, PermissionError):
            return remaining  # sandboxed: no new processes at all
        hung = False
        try:
            try:
                futures = {
                    i: pool.submit(
                        _run_point,
                        topology,
                        params,
                        points[i],
                        audit,
                        audit_interval,
                        fault_schedule,
                        telemetry,
                        profile,
                        keys[i] if keys is not None else None,
                        stepping,
                        multirate,
                        backend,
                    )
                    for i in remaining
                }
            except ReproError:
                raise  # deterministic: a retry cannot change it
            except Exception:
                # Submission itself failed (e.g. a BrokenProcessPool
                # before any work was accepted).  Crash-type failure
                # for the whole round: every point stays in
                # ``remaining`` for the next round — or the caller's
                # serial fallback — instead of escaping the retry
                # machinery entirely.
                continue
            still: List[int] = []
            order = iter(list(remaining))
            for i in order:
                try:
                    result = futures[i].result(timeout=timeout_s)
                except ReproError:
                    raise  # deterministic: a retry cannot change it
                except FutureTimeoutError:
                    timed_out[i] = timed_out.get(i, 0) + 1
                    hung = True
                    still.append(i)
                    if session is not None:
                        session.emit(
                            "pool_timeout",
                            index=i,
                            attempt=timed_out[i],
                        )
                    # The pool is wedged on the hung worker.  Harvest
                    # whatever already finished, requeue the rest, and
                    # abandon the round.
                    for j in order:
                        done = futures[j]
                        if done.done() and done.exception() is None:
                            record(j, done.result())
                        else:
                            still.append(j)
                    break
                except Exception:
                    # Crash-type failure (broken pool, pickling, OS):
                    # leave the point for the next round.
                    still.append(i)
                else:
                    record(i, result)
            remaining = still
        finally:
            if hung:
                # Do not wait on the hung worker; kill the pool.
                for proc in getattr(pool, "_processes", {}).values():
                    proc.terminate()
            pool.shutdown(wait=not hung, cancel_futures=True)
    hopeless = [i for i in remaining if timed_out.get(i, 0) > 0]
    if hopeless:
        raise SimulationError(
            f"sweep points {hopeless} exceeded the {timeout_s:g}s "
            f"per-point timeout in {max(timed_out.values())} attempt(s); "
            "not retrying serially (a hung point would hang the parent)"
        )
    return remaining

"""Read-only scheduler-facing view over the simulation state.

Scheduling policies must never mutate engine state — historically that
contract lived in a docstring and nothing enforced it.  The
:class:`SchedulerView` makes it structural: every per-socket array is
exposed as a **non-writeable NumPy view**, so a policy that tries
``view.chip_c[3] = 0`` raises ``ValueError: assignment destination is
read-only`` instead of silently corrupting the run.

The view mirrors the attribute surface of
:class:`~repro.sim.state.SimulationState` that policies legitimately
use (temperatures, frequencies, busy flags, job power parameters,
topology, parameters, clock), so existing policies work unchanged and
unit tests may still pass a raw ``SimulationState`` where convenient —
the view is what the engine hands to policies in real runs.

Array views are created per access because the underlying state rebinds
arrays (warm start, thermal updates); each access therefore always
reflects the live state.  Creating a view is allocation-light (no data
copy).
"""

from __future__ import annotations

from typing import Optional, Tuple, TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..workloads.job import Job
    from .state import SimulationState


def _readonly(array: np.ndarray) -> np.ndarray:
    """A non-writeable view sharing ``array``'s buffer."""
    view = array.view()
    view.flags.writeable = False
    return view


class SchedulerView:
    """Immutable window onto one simulation's live state.

    Handed to :meth:`repro.core.base.Scheduler.reset`,
    :meth:`~repro.core.base.Scheduler.select_socket` and
    :meth:`repro.core.migration.MigrationPolicy.propose`.  All array
    attributes are non-writeable views; writing through them raises.
    """

    __slots__ = ("_state",)

    def __init__(self, state: "SimulationState"):
        object.__setattr__(self, "_state", state)

    def __setattr__(self, name, value):
        raise AttributeError(
            "SchedulerView is read-only; policies must not mutate "
            "simulation state"
        )

    # -- scalars and structure -------------------------------------------

    @property
    def topology(self):
        """Server geometry and coupling (treat as immutable)."""
        return self._state.topology

    @property
    def params(self):
        """Simulation parameters (immutable)."""
        return self._state.params

    @property
    def ladder(self):
        """The DVFS ladder shared by every socket."""
        return self._state.ladder

    @property
    def n_sockets(self) -> int:
        """Socket count."""
        return self._state.n_sockets

    @property
    def time_s(self) -> float:
        """Current simulation time, seconds."""
        return self._state.time_s

    # -- per-socket arrays (non-writeable views) -------------------------

    @property
    def busy(self) -> np.ndarray:
        """Per-socket busy flags."""
        return _readonly(self._state.busy)

    @property
    def freq_mhz(self) -> np.ndarray:
        """Per-socket current frequency, MHz."""
        return _readonly(self._state.freq_mhz)

    @property
    def remaining_work_ms(self) -> np.ndarray:
        """Work left on each running job, ms."""
        return _readonly(self._state.remaining_work_ms)

    @property
    def dyn_max_w(self) -> np.ndarray:
        """Running job's dynamic power at top frequency, W."""
        return _readonly(self._state.dyn_max_w)

    @property
    def dyn_exp(self) -> np.ndarray:
        """Running job's dynamic power exponent."""
        return _readonly(self._state.dyn_exp)

    @property
    def perf_drop(self) -> np.ndarray:
        """Running job's performance drop at the ladder bottom."""
        return _readonly(self._state.perf_drop)

    @property
    def power_w(self) -> np.ndarray:
        """Socket power drawn during the last step, W."""
        return _readonly(self._state.power_w)

    @property
    def ambient_c(self) -> np.ndarray:
        """Entry air temperature per socket, degC."""
        return _readonly(self._state.ambient_c)

    @property
    def history_c(self) -> np.ndarray:
        """Exponentially smoothed chip temperatures, degC."""
        return _readonly(self._state.history_c)

    @property
    def busy_ema(self) -> np.ndarray:
        """Exponentially smoothed per-socket utilisation."""
        return _readonly(self._state.busy_ema)

    @property
    def chip_c(self) -> np.ndarray:
        """Current chip temperatures, degC."""
        return _readonly(self._state.thermal.chip_c)

    @property
    def sink_c(self) -> np.ndarray:
        """Current heat-sink temperatures, degC."""
        return _readonly(self._state.thermal.sink_c)

    # -- derived queries -------------------------------------------------

    @property
    def running_jobs(self) -> Tuple[Optional["Job"], ...]:
        """The job each socket is executing (``None`` while idle)."""
        return tuple(self._state.running_jobs)

    def idle_socket_ids(self) -> np.ndarray:
        """Indices of sockets with no running job (fresh array)."""
        return self._state.idle_socket_ids()


class FaultAwareSchedulerView(SchedulerView):
    """Scheduler view reflecting faulty telemetry and dead sockets.

    Installed by the :class:`repro.faults.injector.FaultInjector` in
    place of the plain view whenever a fault schedule is configured.
    Two differences from the base view:

    - every temperature channel (``chip_c``, ``sink_c``, ``ambient_c``,
      ``history_c``) returns the *observed* values — the true state
      with any active sensor bias / stuck / dropout overlays applied —
      so policies (including the coupling predictor) decide on what a
      real management plane would see, while the physics keeps running
      on the true temperatures;
    - :meth:`idle_socket_ids` excludes killed sockets, so neither the
      placer nor a migration policy can target a dead socket.

    With no fault active the overlays are zero-copy pass-throughs, so
    a run under an *empty* schedule reads the identical values as a
    fault-free run.
    """

    __slots__ = ("_faults",)

    def __init__(self, state: "SimulationState", faults) -> None:
        super().__init__(state)
        object.__setattr__(self, "_faults", faults)

    @property
    def chip_c(self) -> np.ndarray:
        """Observed chip temperatures, degC."""
        return self._faults.observe("chip_c", self._state.thermal.chip_c)

    @property
    def sink_c(self) -> np.ndarray:
        """Observed heat-sink temperatures, degC."""
        return self._faults.observe("sink_c", self._state.thermal.sink_c)

    @property
    def ambient_c(self) -> np.ndarray:
        """Observed entry air temperatures, degC."""
        return self._faults.observe("ambient_c", self._state.ambient_c)

    @property
    def history_c(self) -> np.ndarray:
        """Observed smoothed chip temperatures, degC."""
        return self._faults.observe("history_c", self._state.history_c)

    @property
    def alive(self) -> np.ndarray:
        """Per-socket service flags (``False`` = killed)."""
        return _readonly(self._faults.alive)

    def idle_socket_ids(self) -> np.ndarray:
        """Idle **and alive** socket indices (fresh array)."""
        ids = self._state.idle_socket_ids()
        if self._faults.any_dead:
            return ids[self._faults.alive[ids]]
        return ids

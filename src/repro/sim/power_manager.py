"""Power manager: DVFS selection and power computation.

The paper's power management policy "emphasizes responsiveness and runs
jobs at the highest possible frequency within the temperature limit"
(Table III), evaluated every 1 ms.  Because the on-chip time constant
(5 ms) is tiny compared to the heat-sink constant (30 s), the chip sits
in quasi-equilibrium with its sink; the manager therefore grants the
highest state whose quasi-equilibrium chip temperature

    T_chip = T_sink + P(f) * R_int + theta(P(f))

stays under the 95 degC limit.  Boost states (above the sustained
1500 MHz) are additionally gated by the boost governor threshold — the
BKDG-derived rule that a fully loaded socket only *sustains* the highest
non-boost state, boosting opportunistically while thermal headroom
exists.

Idle sockets are power gated and draw 10% of TDP.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..config.parameters import SimulationParameters
from ..server.processors import FrequencyLadder
from ..workloads.power_model import leakage_power

ArrayLike = Union[float, np.ndarray]


def predicted_chip_temperature(
    sink_c: ArrayLike,
    power_w: ArrayLike,
    r_int: float,
    theta_offset: ArrayLike,
    theta_slope: ArrayLike,
) -> ArrayLike:
    """Quasi-equilibrium chip temperature over the current sink state."""
    return (
        np.asarray(sink_c)
        + np.asarray(power_w) * r_int
        + np.asarray(theta_offset)
        + np.asarray(theta_slope) * np.asarray(power_w)
    )


def dynamic_power(
    freq_mhz: ArrayLike,
    dyn_max_w: ArrayLike,
    dyn_exp: ArrayLike,
    max_mhz: float,
) -> ArrayLike:
    """Dynamic power of the running job at ``freq_mhz``, W."""
    ratio = np.asarray(freq_mhz, dtype=float) / max_mhz
    return np.asarray(dyn_max_w) * ratio ** np.asarray(dyn_exp)


def select_frequencies(
    sink_c: np.ndarray,
    chip_c: np.ndarray,
    dyn_max_w: np.ndarray,
    dyn_exp: np.ndarray,
    tdp_w: np.ndarray,
    theta_offset: np.ndarray,
    theta_slope: np.ndarray,
    ladder: FrequencyLadder,
    params: SimulationParameters,
) -> np.ndarray:
    """Per-socket highest allowed frequency, MHz (vectorised).

    Every input is a per-socket array (idle sockets may pass zeros for
    the job parameters; their result is meaningless and ignored by the
    engine).  The selection walks the ladder bottom-up, keeping the
    highest state whose predicted chip temperature respects the 95 degC
    limit — and, for boost states, the boost governor threshold.  The
    minimum state is always available (the clock is never stopped).
    """
    leak = leakage_power(chip_c, 1.0) * tdp_w  # vector TDP scaling
    freq = np.full(sink_c.shape, float(ladder.min_mhz))
    for state in ladder.states_mhz:
        power = dynamic_power(state, dyn_max_w, dyn_exp, ladder.max_mhz)
        power = power + leak
        chip_eq = predicted_chip_temperature(
            sink_c, power, params.r_int, theta_offset, theta_slope
        )
        allowed = chip_eq <= params.temperature_limit_c
        if ladder.is_boost(state):
            allowed &= chip_eq <= params.boost_chip_temp_limit_c
        freq = np.where(allowed, float(state), freq)
    return freq


def select_frequencies_steady(
    ambient_c: np.ndarray,
    chip_c: np.ndarray,
    dyn_max_w: np.ndarray,
    dyn_exp: np.ndarray,
    tdp_w: np.ndarray,
    r_ext: np.ndarray,
    theta_offset: np.ndarray,
    theta_slope: np.ndarray,
    ladder: FrequencyLadder,
    params: SimulationParameters,
) -> np.ndarray:
    """Steady-state frequency prediction from entry air temperature.

    Uses the full Equation 1 (``T = T_amb + P * (R_int + R_ext) +
    theta``), i.e. the temperature the chip settles at once its heat
    sink equilibrates — the prediction the paper's Predictive and CP
    schedulers perform.  Compared to :func:`select_frequencies` (which
    reflects the instantaneous sink state) the steady view responds
    smoothly to ambient changes, because each DVFS state's power
    difference shifts the equilibrium through the external resistance
    as well.
    """
    leak = leakage_power(chip_c, 1.0) * tdp_w
    freq = np.full(ambient_c.shape, float(ladder.min_mhz))
    for state in ladder.states_mhz:
        power = dynamic_power(state, dyn_max_w, dyn_exp, ladder.max_mhz)
        power = power + leak
        chip_ss = (
            ambient_c
            + power * (params.r_int + r_ext)
            + theta_offset
            + theta_slope * power
        )
        allowed = chip_ss <= params.temperature_limit_c
        if ladder.is_boost(state):
            allowed &= chip_ss <= params.boost_chip_temp_limit_c
        freq = np.where(allowed, float(state), freq)
    return freq

"""Power manager: DVFS selection and power computation.

The paper's power management policy "emphasizes responsiveness and runs
jobs at the highest possible frequency within the temperature limit"
(Table III), evaluated every 1 ms.  Because the on-chip time constant
(5 ms) is tiny compared to the heat-sink constant (30 s), the chip sits
in quasi-equilibrium with its sink; the manager therefore grants the
highest state whose quasi-equilibrium chip temperature

    T_chip = T_sink + P(f) * R_int + theta(P(f))

stays under the 95 degC limit.  Boost states (above the sustained
1500 MHz) are additionally gated by the boost governor threshold — the
BKDG-derived rule that a fully loaded socket only *sustains* the highest
non-boost state, boosting opportunistically while thermal headroom
exists.

Idle sockets are power gated and draw 10% of TDP.

Both selection functions are *batched over the ladder*: instead of a
Python loop re-deriving power and temperature per DVFS state, one
``(n_states, n_sockets)`` broadcast computes every state's predicted
chip temperature at once and a reverse arg-max picks the highest
admissible state per socket.  The broadcast performs the identical
floating-point operations in the identical per-element order as the
historical state-by-state walk, so results are bit-identical — only the
Python-level dispatch count shrinks (the engine's hottest loop).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional, Tuple, Union

from ..backend import ArrayBackend, get_backend
from ..backend import numpy_xp as np
from ..config.parameters import SimulationParameters
from ..server.processors import FrequencyLadder
from ..workloads.power_model import leakage_power

ArrayLike = Union[float, np.ndarray]


@lru_cache(maxsize=32)
def _ladder_tables(
    ladder: FrequencyLadder,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-ladder constants: states column, boost mask, ratio column.

    Cached per ladder (ladders are small frozen dataclasses shared by
    every socket).  The returned arrays are internal — callers must not
    mutate them.
    """
    states = np.asarray(ladder.states_mhz, dtype=float)[:, None]
    boost = np.asarray(
        [ladder.is_boost(state) for state in ladder.states_mhz],
        dtype=bool,
    )
    ratios = states / ladder.max_mhz
    return states, boost, ratios


@lru_cache(maxsize=64)
def _state_limits_cached(
    ladder: FrequencyLadder, limit: float, boost_limit_c: float
) -> np.ndarray:
    _, boost, _ = _ladder_tables(ladder)
    boost_limit = min(boost_limit_c, limit)
    return np.where(boost, boost_limit, limit)[:, None]


def _state_limits(
    ladder: FrequencyLadder, params: SimulationParameters
) -> np.ndarray:
    """Per-state chip-temperature admission threshold, as a column.

    A non-boost state only needs ``chip <= temperature_limit_c``; a
    boost state additionally needs ``chip <= boost_chip_temp_limit_c``.
    Collapsing the conjunction into ``chip <= min(both limits)`` yields
    the identical admission booleans with one comparison instead of a
    masked second pass.  Cached per (ladder, limits) triple.
    """
    return _state_limits_cached(
        ladder,
        params.temperature_limit_c,
        params.boost_chip_temp_limit_c,
    )


class SelectionWorkspace:
    """Reusable scratch buffers for :func:`select_frequencies`.

    The engine evaluates DVFS selection every millisecond; without a
    workspace each call allocates several ``(n_states, n_sockets)``
    temporaries.  A caller that owns one of these (the pipeline's
    PowerManager) amortises those allocations across the whole run.
    Buffer contents are overwritten on every call — never read them
    between calls.
    """

    __slots__ = (
        "power", "chip_eq", "theta_term", "allowed",
        "any_allowed", "pick", "freq",
    )

    def __init__(self, n_states: int, n_sockets: int) -> None:
        shape = (n_states, n_sockets)
        self.power = np.empty(shape)
        self.chip_eq = np.empty(shape)
        self.theta_term = np.empty(shape)
        self.allowed = np.empty(shape, dtype=bool)
        self.any_allowed = np.empty(n_sockets, dtype=bool)
        self.pick = np.empty(n_sockets, dtype=np.intp)
        self.freq = np.empty(n_sockets)

    @classmethod
    def for_ladder(
        cls, ladder: FrequencyLadder, n_sockets: int
    ) -> "SelectionWorkspace":
        return cls(len(ladder.states_mhz), n_sockets)


def _pick_highest_allowed(
    allowed: np.ndarray,
    states: np.ndarray,
    min_mhz: float,
    workspace: Optional[SelectionWorkspace] = None,
    xp=np,
) -> np.ndarray:
    """Highest admissible ladder state per socket, else the floor.

    ``allowed`` is the ``(n_states, n_sockets)`` admissibility matrix
    with states ascending along axis 0.  Equivalent to the historical
    bottom-up walk that overwrote with each higher admissible state:
    the *last* allowed state wins; sockets with no admissible state
    fall back to the minimum (the clock is never stopped).
    """
    if workspace is None:
        any_allowed = allowed.any(axis=0)
        last = allowed.shape[0] - 1 - xp.argmax(allowed[::-1], axis=0)
        return xp.where(any_allowed, states[last, 0], min_mhz)
    # ndarray methods skip the np.* dispatch wrappers on the hot path.
    any_allowed = allowed.any(axis=0, out=workspace.any_allowed)
    pick = allowed[::-1].argmax(axis=0, out=workspace.pick)
    np.subtract(allowed.shape[0] - 1, pick, out=pick)
    states[:, 0].take(pick, out=workspace.freq)
    return np.where(any_allowed, workspace.freq, min_mhz)


def predicted_chip_temperature(
    sink_c: ArrayLike,
    power_w: ArrayLike,
    r_int: float,
    theta_offset: ArrayLike,
    theta_slope: ArrayLike,
) -> ArrayLike:
    """Quasi-equilibrium chip temperature over the current sink state."""
    return (
        np.asarray(sink_c)
        + np.asarray(power_w) * r_int
        + np.asarray(theta_offset)
        + np.asarray(theta_slope) * np.asarray(power_w)
    )


def dynamic_power(
    freq_mhz: ArrayLike,
    dyn_max_w: ArrayLike,
    dyn_exp: ArrayLike,
    max_mhz: float,
) -> ArrayLike:
    """Dynamic power of the running job at ``freq_mhz``, W."""
    ratio = np.asarray(freq_mhz, dtype=float) / max_mhz
    return np.asarray(dyn_max_w) * ratio ** np.asarray(dyn_exp)


def select_frequencies(
    sink_c: np.ndarray,
    chip_c: np.ndarray,
    dyn_max_w: np.ndarray,
    dyn_exp: np.ndarray,
    tdp_w: np.ndarray,
    theta_offset: np.ndarray,
    theta_slope: np.ndarray,
    ladder: FrequencyLadder,
    params: SimulationParameters,
    leakage_w: Optional[np.ndarray] = None,
    workspace: Optional[SelectionWorkspace] = None,
    backend: Optional[ArrayBackend] = None,
) -> np.ndarray:
    """Per-socket highest allowed frequency, MHz (vectorised).

    Every input is a per-socket array (idle sockets may pass zeros for
    the job parameters; their result is meaningless and ignored by the
    engine).  The selection considers every ladder state at once,
    keeping the highest state whose predicted chip temperature respects
    the 95 degC limit — and, for boost states, the boost governor
    threshold.  The minimum state is always available (the clock is
    never stopped).

    Args:
        leakage_w: Optional precomputed per-socket leakage power
            (``leakage_power(chip_c, 1.0) * tdp_w``); callers that
            already hold the identical quantity (the engine's power
            step) pass it to avoid recomputation.
        workspace: Optional :class:`SelectionWorkspace` sized for this
            ladder and socket count; repeat callers (the engine hot
            path) pass one to skip per-call temporary allocation.
        backend: Array backend.  Non-inplace backends take the pure
            functional twin below (workspace ignored), which performs
            the identical float ops in the identical per-element
            order — bit-identical under numpy, traceable under JAX.
    """
    backend = get_backend(backend)
    if not backend.inplace:
        xp = backend.xp
        if leakage_w is None:
            leakage_w = leakage_power(chip_c, 1.0, xp=xp) * tdp_w
        states, boost, ratios = _ladder_tables(ladder)
        limits = _state_limits(ladder, params)
        if backend.name != "numpy":
            states = backend.asarray(states)
            ratios = backend.asarray(ratios)
            limits = backend.asarray(limits)
        power = ratios ** dyn_exp
        power = power * dyn_max_w
        power = power + leakage_w
        chip_eq = power * params.r_int
        chip_eq = chip_eq + sink_c
        chip_eq = chip_eq + theta_offset
        chip_eq = chip_eq + theta_slope * power
        allowed = chip_eq <= limits
        return _pick_highest_allowed(
            allowed, states, float(ladder.min_mhz), xp=xp
        )
    if leakage_w is None:
        leakage_w = leakage_power(chip_c, 1.0) * tdp_w
    states, boost, ratios = _ladder_tables(ladder)
    # In-place accumulation of power = dyn_max * ratio**exp + leak and
    # chip_eq = sink + power*r_int + theta_off + theta_slope*power,
    # reordering only across commutative ops (bit-identical results).
    if workspace is None:
        power = ratios ** dyn_exp
        chip_eq = None
    else:
        power = np.power(ratios, dyn_exp, out=workspace.power)
        chip_eq = workspace.chip_eq
    power *= dyn_max_w
    power += leakage_w
    chip_eq = np.multiply(power, params.r_int, out=chip_eq)
    chip_eq += sink_c
    chip_eq += theta_offset
    if workspace is None:
        chip_eq += theta_slope * power
        allowed = chip_eq <= _state_limits(ladder, params)
    else:
        chip_eq += np.multiply(
            theta_slope, power, out=workspace.theta_term
        )
        allowed = np.less_equal(
            chip_eq, _state_limits(ladder, params), out=workspace.allowed
        )
    return _pick_highest_allowed(
        allowed, states, float(ladder.min_mhz), workspace
    )


def select_frequencies_steady(
    ambient_c: np.ndarray,
    chip_c: np.ndarray,
    dyn_max_w: np.ndarray,
    dyn_exp: np.ndarray,
    tdp_w: np.ndarray,
    r_ext: np.ndarray,
    theta_offset: np.ndarray,
    theta_slope: np.ndarray,
    ladder: FrequencyLadder,
    params: SimulationParameters,
    backend: Optional[ArrayBackend] = None,
) -> np.ndarray:
    """Steady-state frequency prediction from entry air temperature.

    Uses the full Equation 1 (``T = T_amb + P * (R_int + R_ext) +
    theta``), i.e. the temperature the chip settles at once its heat
    sink equilibrates — the prediction the paper's Predictive and CP
    schedulers perform.  Compared to :func:`select_frequencies` (which
    reflects the instantaneous sink state) the steady view responds
    smoothly to ambient changes, because each DVFS state's power
    difference shifts the equilibrium through the external resistance
    as well.

    The batched fleet evaluator calls this with flattened ``(N * n,)``
    inputs: the math is elementwise per column, so batching is
    bit-identical to per-point calls.  Non-inplace backends take the
    pure twin (same ops, same order).
    """
    backend = get_backend(backend)
    if not backend.inplace:
        xp = backend.xp
        leak = leakage_power(chip_c, 1.0, xp=xp) * tdp_w
        states, boost, ratios = _ladder_tables(ladder)
        limits = _state_limits(ladder, params)
        if backend.name != "numpy":
            states = backend.asarray(states)
            ratios = backend.asarray(ratios)
            limits = backend.asarray(limits)
        power = ratios ** dyn_exp
        power = power * dyn_max_w
        power = power + leak
        chip_ss = power * (params.r_int + r_ext)
        chip_ss = chip_ss + ambient_c
        chip_ss = chip_ss + theta_offset
        chip_ss = chip_ss + theta_slope * power
        allowed = chip_ss <= limits
        return _pick_highest_allowed(
            allowed, states, float(ladder.min_mhz), xp=xp
        )
    leak = leakage_power(chip_c, 1.0) * tdp_w
    states, boost, ratios = _ladder_tables(ladder)
    power = ratios ** dyn_exp
    power *= dyn_max_w
    power += leak
    chip_ss = power * (params.r_int + r_ext)
    chip_ss += ambient_c
    chip_ss += theta_offset
    chip_ss += theta_slope * power
    allowed = chip_ss <= _state_limits(ladder, params)
    return _pick_highest_allowed(allowed, states, float(ladder.min_mhz))

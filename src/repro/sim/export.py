"""Exporting simulation results to JSON / CSV.

Sweep experiments produce many :class:`SimulationResult` objects; these
helpers flatten them into rows for archival, plotting, or regression
tracking across runs of the benchmark harness.
"""

from __future__ import annotations

import csv
import json
from typing import Dict, List, Mapping, Tuple

from ..errors import SimulationError
from ..metrics.zones import zone_report
from ..workloads.benchmark import BenchmarkSet
from .results import SimulationResult

#: Columns emitted for every run, in order.
SUMMARY_FIELDS = (
    "scheduler",
    "benchmark_set",
    "load",
    "n_jobs_completed",
    "mean_runtime_expansion",
    "performance",
    "utilization",
    "average_power_w",
    "energy_j",
    "ed2",
    "avg_relative_frequency",
    "boost_share",
    "front_work",
    "back_work",
    "even_work",
    "max_chip_c",
    "n_migrations",
)


def result_summary(
    result: SimulationResult,
    benchmark_set: "BenchmarkSet | None" = None,
    load: "float | None" = None,
) -> Dict[str, object]:
    """Flatten one run into a JSON-serialisable summary row."""
    if not result.completed_jobs:
        raise SimulationError("cannot summarise a run with no jobs")
    zones = zone_report(result)
    busy = float(result.busy_time_s.sum())
    return {
        "scheduler": result.scheduler_name,
        "benchmark_set": benchmark_set.value if benchmark_set else None,
        "load": load,
        "n_jobs_completed": result.n_jobs_completed,
        "mean_runtime_expansion": result.mean_runtime_expansion,
        "performance": result.performance,
        "utilization": result.utilization,
        "average_power_w": result.average_power_w,
        "energy_j": result.energy_j,
        "ed2": result.ed2_j_s2,
        "avg_relative_frequency": result.average_relative_frequency(),
        "boost_share": (
            float(result.boost_time_s.sum()) / busy if busy > 0 else 0.0
        ),
        "front_work": zones.front_work,
        "back_work": zones.back_work,
        "even_work": zones.even_work,
        "max_chip_c": float(result.max_chip_c.max()),
        "n_migrations": result.n_migrations,
    }


def sweep_summaries(
    results: Mapping[Tuple[str, BenchmarkSet, float], SimulationResult],
) -> List[Dict[str, object]]:
    """Summaries for a :func:`repro.sim.runner.run_sweep` result map."""
    rows = []
    for (scheduler, benchmark_set, load), result in sorted(
        results.items(), key=lambda kv: (kv[0][1].value, kv[0][2], kv[0][0])
    ):
        rows.append(result_summary(result, benchmark_set, load))
    return rows


def save_json(
    results: Mapping[Tuple[str, BenchmarkSet, float], SimulationResult],
    path: str,
) -> None:
    """Write a sweep's summaries to a JSON file."""
    with open(path, "w") as handle:
        json.dump(sweep_summaries(results), handle, indent=2)


def save_csv(
    results: Mapping[Tuple[str, BenchmarkSet, float], SimulationResult],
    path: str,
) -> None:
    """Write a sweep's summaries to a CSV file."""
    rows = sweep_summaries(results)
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=SUMMARY_FIELDS)
        writer.writeheader()
        writer.writerows(rows)


def load_json(path: str) -> List[Dict[str, object]]:
    """Read summaries previously written by :func:`save_json`."""
    with open(path) as handle:
        data = json.load(handle)
    if not isinstance(data, list):
        raise SimulationError(f"{path} does not contain a summary list")
    return data

"""Time-series tracing of simulation state.

The engine optionally samples aggregate state at a fixed period,
producing a :class:`SimulationTrace` — the raw material for thermal
time-series plots, convergence checks, and debugging scheduler
behaviour (e.g. watching the back half heat up under CF as load rises).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..errors import SimulationError


@dataclass
class TraceConfig:
    """What and how often to sample.

    Attributes:
        interval_s: Sampling period, seconds.
        per_zone: Also record per-zone mean chip temperatures.
    """

    interval_s: float = 0.1
    per_zone: bool = True

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise SimulationError("trace interval must be positive")


@dataclass
class SimulationTrace:
    """Sampled time series from one run.

    All lists are aligned: entry ``i`` was sampled at ``times_s[i]``.

    Attributes:
        times_s: Sample timestamps, seconds.
        utilization: Fraction of sockets busy.
        queue_length: Jobs waiting for a socket.
        mean_chip_c: Mean chip temperature, degC.
        max_chip_c: Hottest chip temperature, degC.
        total_power_w: Server power, W.
        mean_rel_frequency: Mean relative frequency of busy sockets
            (nan when everything is idle).
        zone_chip_c: Per-sample list of per-zone mean chip
            temperatures (empty when per-zone tracing is off).
    """

    times_s: List[float] = field(default_factory=list)
    utilization: List[float] = field(default_factory=list)
    queue_length: List[int] = field(default_factory=list)
    mean_chip_c: List[float] = field(default_factory=list)
    max_chip_c: List[float] = field(default_factory=list)
    total_power_w: List[float] = field(default_factory=list)
    mean_rel_frequency: List[float] = field(default_factory=list)
    zone_chip_c: List[List[float]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.times_s)

    def reset(self) -> None:
        """Drop every recorded sample, ready for a fresh run.

        The engine's :class:`~repro.sim.pipeline.Tracer` component
        builds a fresh trace per run, but hand-held traces (tests,
        notebooks) can be recycled with this instead of silently
        concatenating samples across runs.
        """
        for series in (
            self.times_s,
            self.utilization,
            self.queue_length,
            self.mean_chip_c,
            self.max_chip_c,
            self.total_power_w,
            self.mean_rel_frequency,
            self.zone_chip_c,
        ):
            series.clear()

    def sample(self, state, queue_length: int, max_mhz: float) -> None:
        """Record one sample from the live engine state."""
        self.times_s.append(state.time_s)
        busy = state.busy
        n = state.n_sockets
        self.utilization.append(float(busy.sum()) / n)
        self.queue_length.append(queue_length)
        chip = state.chip_c
        self.mean_chip_c.append(float(chip.mean()))
        self.max_chip_c.append(float(chip.max()))
        self.total_power_w.append(float(state.power_w.sum()))
        if busy.any():
            self.mean_rel_frequency.append(
                float(state.freq_mhz[busy].mean()) / max_mhz
            )
        else:
            self.mean_rel_frequency.append(float("nan"))

    def sample_zones(self, state) -> None:
        """Record per-zone mean chip temperatures."""
        topology = state.topology
        zones = []
        for zone in range(1, topology.n_zones + 1):
            ids = topology.sockets_in_zone(zone)
            zones.append(float(state.chip_c[ids].mean()))
        self.zone_chip_c.append(zones)

    def as_arrays(self) -> dict:
        """The trace as numpy arrays keyed by series name."""
        out = {
            "times_s": np.asarray(self.times_s),
            "utilization": np.asarray(self.utilization),
            "queue_length": np.asarray(self.queue_length),
            "mean_chip_c": np.asarray(self.mean_chip_c),
            "max_chip_c": np.asarray(self.max_chip_c),
            "total_power_w": np.asarray(self.total_power_w),
            "mean_rel_frequency": np.asarray(self.mean_rel_frequency),
        }
        if self.zone_chip_c:
            out["zone_chip_c"] = np.asarray(self.zone_chip_c)
        return out

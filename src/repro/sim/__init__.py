"""Discrete-event simulation engine for dense-server scheduling studies.

The engine advances in fixed steps equal to the power-manager interval
(1 ms in Table III).  Each step runs an ordered pipeline of
:class:`~repro.sim.pipeline.StepComponent` phases (see
:mod:`repro.sim.pipeline` and ``docs/architecture.md``):

1. ``ArrivalAdmitter`` — admit newly arrived jobs to the central queue,
2. ``Placer`` — let the scheduling policy place queued jobs onto idle
   sockets (policies see a read-only
   :class:`~repro.sim.view.SchedulerView`),
3. ``Migrator`` (optional) — periodic thermal-aware job migration,
4. ``PowerManager`` — per socket, the highest DVFS state whose
   predicted chip temperature stays under the 95 degC limit (boost
   states additionally require headroom under the boost governor
   threshold; see :mod:`repro.sim.power_manager`),
5. ``WorkRetirer`` — retire work on busy sockets at the
   frequency-dependent rate and record completions (with sub-step
   interpolation),
6. ``FanControl`` (optional) — airflow modulation with load,
7. ``ThermalUpdater`` — the two-node thermal model and the
   inter-socket coupling chain,
8. ``MetricsAccumulator`` — metric accumulation once past the warm-up
   window,
9. ``Tracer`` / ``Auditor`` (optional) — time-series sampling and
   physical-invariant auditing.

A :class:`~repro.faults.injector.FaultInjector` (optional) slots
between the admitter and the placer, replaying a deterministic
:class:`~repro.faults.schedule.FaultSchedule` (fan degradation, sensor
faults, stuck DVFS, socket kills, power caps) while the power manager
and auditor enforce graceful degradation; see
:mod:`repro.faults`.

All per-socket quantities are numpy arrays — batched over the DVFS
ladder inside the power manager — so a step costs a fixed handful of
vector operations regardless of socket count.
"""

from .state import SimulationState
from .view import SchedulerView
from .power_manager import select_frequencies, predicted_chip_temperature
from .engine import Engine, Simulation
from .pipeline import EngineContext, StepComponent, build_pipeline
from .invariants import InvariantAuditor, InvariantViolation
from .results import SimulationResult
from .runner import run_once, run_sweep
from .parallel import SweepCache, clear_shared_cache, execute_sweep
from .checkpoint import SweepCheckpoint
from .fingerprint import result_fingerprint

__all__ = [
    "SimulationState",
    "SchedulerView",
    "select_frequencies",
    "predicted_chip_temperature",
    "Engine",
    "EngineContext",
    "StepComponent",
    "build_pipeline",
    "Simulation",
    "SimulationResult",
    "InvariantAuditor",
    "InvariantViolation",
    "SweepCache",
    "SweepCheckpoint",
    "clear_shared_cache",
    "execute_sweep",
    "result_fingerprint",
    "run_once",
    "run_sweep",
]

"""Discrete-event simulation engine for dense-server scheduling studies.

The engine advances in fixed steps equal to the power-manager interval
(1 ms in Table III).  Every step it:

1. admits newly arrived jobs to the central queue,
2. lets the scheduling policy place queued jobs onto idle sockets,
3. runs the power manager — per socket, the highest DVFS state whose
   predicted chip temperature stays under the 95 degC limit (boost
   states additionally require headroom under the boost governor
   threshold; see :mod:`repro.sim.power_manager`),
4. retires work on busy sockets at the frequency-dependent rate and
   records completions (with sub-step interpolation),
5. advances the two-node thermal model and the inter-socket coupling
   chain, and
6. accumulates metrics once past the warm-up window.

All per-socket quantities are numpy arrays, so a step costs a handful of
vector operations regardless of socket count.
"""

from .state import SimulationState
from .power_manager import select_frequencies, predicted_chip_temperature
from .engine import Simulation
from .invariants import InvariantAuditor, InvariantViolation
from .results import SimulationResult
from .runner import run_once, run_sweep
from .parallel import SweepCache, clear_shared_cache, execute_sweep

__all__ = [
    "SimulationState",
    "select_frequencies",
    "predicted_chip_temperature",
    "Simulation",
    "SimulationResult",
    "InvariantAuditor",
    "InvariantViolation",
    "SweepCache",
    "clear_shared_cache",
    "execute_sweep",
    "run_once",
    "run_sweep",
]

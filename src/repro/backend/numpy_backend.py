"""The default numpy backend (optionally scipy-accelerated).

This module is the one place in the seam-managed numerics that is
allowed to ``import numpy`` and ``scipy.linalg`` directly (enforced by
``scripts/lint_backend_seam.py``).  Every seam module obtains its
default namespace through :data:`repro.backend.numpy_xp`, which is this
module's ``numpy`` — so the default execution path performs literally
the same operations it always has.

Two flavours share the class:

- ``NumpyBackend()`` (``inplace=True``) — the production default; hot
  kernels keep their historical ``out=``/scratch-buffer code.
- ``NumpyBackend(inplace=False)`` — the *pure-twin* flavour; kernels
  take their functional (JAX-shaped) branches while still executing
  numpy ops, which lets the test suite pin the pure branches
  bit-identical to the default without JAX installed.
"""

from __future__ import annotations

import warnings
from typing import Any, Callable

import numpy as np

from ..errors import ThermalModelError
from .base import ArrayBackend, LinearSolver

try:  # pragma: no cover - exercised implicitly on scipy installs
    from scipy.linalg import lu_factor, lu_solve

    HAVE_SCIPY = True
except ImportError:  # pragma: no cover - scipy-less fallback
    lu_factor = lu_solve = None
    HAVE_SCIPY = False

#: Shared zero-pivot message (the historical FactorizedSystem wording).
_SINGULAR_MSG = "singular linear system: zero pivot in LU factorization"


class NumpyLUSolver(LinearSolver):
    """LAPACK ``getrf``/``getrs`` LU via scipy, factorized eagerly.

    Exact singularity (a zero pivot) raises
    :class:`~repro.errors.ThermalModelError` at construction; scipy
    alone merely warns and would hand back ``inf``/``nan`` solutions.
    """

    __slots__ = ("matrix", "_lu_piv")

    def __init__(self, matrix: np.ndarray) -> None:
        self.matrix = matrix
        with warnings.catch_warnings():
            # scipy warns (LinAlgWarning) instead of raising on an
            # exactly singular factorization; we raise below.
            warnings.simplefilter("ignore")
            lu, piv = lu_factor(matrix, check_finite=False)
        if np.any(np.diagonal(lu) == 0.0):
            raise ThermalModelError(_SINGULAR_MSG)
        self._lu_piv = (lu, piv)

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        return lu_solve(self._lu_piv, rhs, check_finite=False)


class DenseSolver(LinearSolver):
    """Plain ``np.linalg.solve`` against a retained matrix.

    Correct but unamortized; used when scipy is absent (or disabled)
    and for empty systems.  Singularity surfaces at the first solve.
    """

    __slots__ = ("matrix",)

    def __init__(self, matrix: np.ndarray) -> None:
        self.matrix = matrix

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        try:
            return np.linalg.solve(self.matrix, rhs)
        except np.linalg.LinAlgError as exc:
            raise ThermalModelError(_SINGULAR_MSG) from exc


class NumpyBackend(ArrayBackend):
    """Eager numpy execution; the process default.

    Args:
        inplace: When True (default) kernels run their historical
            ``out=``/scratch hot paths.  When False they take the pure
            functional branches — the JAX-shaped code — still under
            numpy, with bit-identical results.
    """

    name = "numpy"
    xp = np

    def __init__(self, inplace: bool = True) -> None:
        self.inplace = bool(inplace)

    # -- array construction / conversion ---------------------------------

    def asarray(self, value: Any, dtype: Any = None) -> np.ndarray:
        return np.asarray(value, dtype=dtype)

    def to_numpy(self, value: Any) -> np.ndarray:
        return np.asarray(value)

    # -- functional updates ----------------------------------------------

    def at_set(self, array: np.ndarray, index: Any, values: Any) -> np.ndarray:
        if self.inplace:
            array[index] = values
            return array
        out = array.copy()
        out[index] = values
        return out

    def at_add(self, array: np.ndarray, index: Any, values: Any) -> np.ndarray:
        if self.inplace:
            array[index] += values
            return array
        out = array.copy()
        out[index] += values
        return out

    # -- linear algebra ---------------------------------------------------

    def solve(self, matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        return DenseSolver(matrix).solve(rhs)

    def factorize(
        self, matrix: np.ndarray, use_lapack: bool = True
    ) -> LinearSolver:
        if use_lapack and HAVE_SCIPY and matrix.size:
            return NumpyLUSolver(matrix)
        return DenseSolver(matrix)

    # -- transforms -------------------------------------------------------

    def jit(self, fn: Callable, **kwargs) -> Callable:
        return fn

    def vmap(self, fn: Callable, **kwargs) -> Callable:
        """Leading-axis loop-and-stack shim for vmapped code shapes."""

        def mapped(*args):
            length = len(args[0])
            outs = [fn(*(arg[i] for arg in args)) for i in range(length)]
            if outs and isinstance(outs[0], tuple):
                return tuple(
                    np.stack([out[j] for out in outs])
                    for j in range(len(outs[0]))
                )
            return np.stack(outs)

        return mapped

    @property
    def cache_token(self) -> str:
        # inplace and pure flavours run identical float ops, so they
        # legitimately share factorization caches; scipy vs fallback
        # LU differ in provider but not bits, covered by one token.
        return "numpy"

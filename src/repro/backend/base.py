"""The array-backend seam: one protocol, many numerics substrates.

The engine's hot kernels (placement scoring, the two-node thermal
update, steady-state and RC solves, batched DVFS selection) are written
against an :class:`ArrayBackend` instead of a hard-wired ``import
numpy``.  A backend bundles

- ``xp`` — the array namespace (``numpy`` or ``jax.numpy``) providing
  the elementwise/ufunc surface the kernels use,
- linear algebra (``solve`` and a factor-once/solve-often
  :class:`LinearSolver` via :meth:`ArrayBackend.factorize`),
- functional-update helpers (:meth:`ArrayBackend.at_set` /
  :meth:`ArrayBackend.at_add`) that hide the ``arr[idx] = v`` vs
  ``arr.at[idx].set(v)`` split,
- transform shims (:meth:`ArrayBackend.jit` / :meth:`ArrayBackend.vmap`)
  that are real compilers under JAX and cheap no-ops/loops under numpy.

Two execution styles coexist behind the seam:

- the **in-place** style (``backend.inplace`` true) is the historical
  numpy hot path — ``out=`` kwargs, augmented assignment into
  persistent scratch buffers — kept byte-for-byte so the default
  backend reproduces every pre-seam trajectory bit for bit;
- the **pure** style allocates fresh arrays through ``xp`` and is the
  shape JAX can trace, jit and vmap.  Pure twins are written to perform
  the identical floating-point operations in the identical per-element
  order, so under ``NumpyBackend(inplace=False)`` they are *also*
  bit-identical — which is how the JAX-shaped code paths are pinned on
  machines without JAX installed.

Backends are stateless value objects; resolving one never mutates
global state.  See :mod:`repro.backend` for the registry and the
``REPRO_BACKEND`` environment contract.
"""

from __future__ import annotations

import abc
from typing import Any, Callable

#: The canonical spelling of every selectable backend.
BACKEND_NAMES = ("numpy", "jax")


class LinearSolver(abc.ABC):
    """A dense linear system factorized once, solved against many RHS.

    Returned by :meth:`ArrayBackend.factorize`; the factorization
    strategy (LAPACK LU, fallback dense solve, jitted JAX LU) is the
    backend's business — callers only ever call :meth:`solve`.
    """

    @abc.abstractmethod
    def solve(self, rhs: Any) -> Any:
        """Solve ``A @ x = rhs`` for ``x``.

        Raises:
            repro.errors.ThermalModelError: if the system is singular
                (backends that factorize lazily raise here instead of
                at construction).
        """


class ArrayBackend(abc.ABC):
    """Pluggable numerics substrate for the seam-managed kernels.

    Attributes:
        name: Registry name (``"numpy"`` or ``"jax"``).
        xp: The array namespace module (``numpy`` / ``jax.numpy``).
        inplace: Whether kernels may use ``out=`` kwargs and mutate
            arrays in place.  True only for the default numpy backend;
            pure-style twins run when this is False.
    """

    name: str
    xp: Any
    inplace: bool

    # -- array construction / conversion ---------------------------------

    @abc.abstractmethod
    def asarray(self, value: Any, dtype: Any = None) -> Any:
        """Coerce ``value`` to this backend's array type."""

    @abc.abstractmethod
    def to_numpy(self, value: Any) -> Any:
        """Materialise a backend array as a host ``numpy.ndarray``."""

    # -- functional updates ----------------------------------------------

    @abc.abstractmethod
    def at_set(self, array: Any, index: Any, values: Any) -> Any:
        """Return ``array`` with ``array[index] = values`` applied.

        In-place backends mutate and return ``array``; functional
        backends return a new array.  Callers must use the return value
        either way.
        """

    @abc.abstractmethod
    def at_add(self, array: Any, index: Any, values: Any) -> Any:
        """Return ``array`` with ``array[index] += values`` applied.

        Same ownership contract as :meth:`at_set`.
        """

    # -- linear algebra ---------------------------------------------------

    @abc.abstractmethod
    def solve(self, matrix: Any, rhs: Any) -> Any:
        """Dense solve of ``matrix @ x = rhs``."""

    @abc.abstractmethod
    def factorize(self, matrix: Any, use_lapack: bool = True) -> LinearSolver:
        """Factorize a dense matrix for repeated solves.

        Args:
            matrix: The square system matrix.
            use_lapack: Permit the amortized LAPACK LU path when the
                host has one (scipy).  ``False`` forces the plain dense
                solve fallback — the knob the scipy-less compatibility
                tests flip.
        """

    # -- transforms -------------------------------------------------------

    @abc.abstractmethod
    def jit(self, fn: Callable, **kwargs) -> Callable:
        """Compile ``fn`` when the backend can; otherwise return it."""

    @abc.abstractmethod
    def vmap(self, fn: Callable, **kwargs) -> Callable:
        """Vectorise ``fn`` over leading axes.

        JAX maps this to :func:`jax.vmap`.  The numpy shim evaluates
        ``fn`` per leading-axis slice in a Python loop and stacks the
        results — semantically equivalent, useful for exercising
        vmapped code shapes without JAX.
        """

    # -- identity ---------------------------------------------------------

    @property
    def cache_token(self) -> str:
        """A stable token identifying this backend's numeric identity.

        Two backends with equal tokens produce bit-identical
        factorizations and kernel results, so caches of derived
        numerical objects (e.g. the detailed chip model's LU cache) key
        on this token to never serve a foreign backend's artifact.
        """
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r} inplace={self.inplace}>"

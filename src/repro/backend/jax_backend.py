"""Optional JAX backend (import-guarded; never required).

Everything in this module degrades gracefully when JAX is not
installed: importing it is always safe, :data:`HAVE_JAX` reports
availability, and constructing :class:`JaxBackend` without JAX raises
:class:`~repro.errors.ConfigurationError` with an installation hint.

The backend enables 64-bit mode (``jax_enable_x64``) at construction —
the engine's thermal trajectories are float64 contracts and the
differential oracle's epsilon bounds assume double precision.  Kernels
run eagerly by default; the batched fleet-tensor evaluator
(:mod:`repro.sim.batched`) is where :meth:`JaxBackend.jit` and
:meth:`JaxBackend.vmap` become real compilers.
"""

from __future__ import annotations

from typing import Any, Callable

from ..errors import ConfigurationError, ThermalModelError
from .base import ArrayBackend, LinearSolver

try:  # pragma: no cover - exercised only where jax is installed
    import jax

    HAVE_JAX = True
except ImportError:  # pragma: no cover - the common container case
    jax = None
    HAVE_JAX = False

#: Message raised when the jax backend is requested but absent.
JAX_MISSING_MSG = (
    "backend 'jax' requested but jax is not installed; install "
    "jax (e.g. pip install 'jax[cpu]') or use the default numpy "
    "backend"
)


class JaxLUSolver(LinearSolver):  # pragma: no cover - needs jax
    """``jax.scipy.linalg`` LU, factorized eagerly on device."""

    __slots__ = ("matrix", "_lu_piv")

    def __init__(self, matrix: Any) -> None:
        from jax.scipy.linalg import lu_factor

        self.matrix = matrix
        lu, piv = lu_factor(matrix)
        import jax.numpy as jnp

        if bool(jnp.any(jnp.diagonal(lu) == 0.0)):
            raise ThermalModelError(
                "singular linear system: zero pivot in LU factorization"
            )
        self._lu_piv = (lu, piv)

    def solve(self, rhs: Any) -> Any:
        from jax.scipy.linalg import lu_solve

        return lu_solve(self._lu_piv, rhs)


class JaxBackend(ArrayBackend):  # pragma: no cover - needs jax
    """JIT-compiling, vmappable numerics on jax.numpy.

    Raises:
        ConfigurationError: at construction when JAX is not installed.
    """

    name = "jax"

    def __init__(self) -> None:
        if not HAVE_JAX:
            raise ConfigurationError(JAX_MISSING_MSG)
        # Double precision: the thermal model's epsilon bounds and the
        # differential oracle assume float64 trajectories.
        jax.config.update("jax_enable_x64", True)
        import jax.numpy as jnp

        self.xp = jnp
        self.inplace = False

    # -- array construction / conversion ---------------------------------

    def asarray(self, value: Any, dtype: Any = None) -> Any:
        return self.xp.asarray(value, dtype=dtype)

    def to_numpy(self, value: Any) -> Any:
        import numpy as np

        return np.asarray(value)

    # -- functional updates ----------------------------------------------

    def at_set(self, array: Any, index: Any, values: Any) -> Any:
        return array.at[index].set(values)

    def at_add(self, array: Any, index: Any, values: Any) -> Any:
        return array.at[index].add(values)

    # -- linear algebra ---------------------------------------------------

    def solve(self, matrix: Any, rhs: Any) -> Any:
        return self.xp.linalg.solve(matrix, rhs)

    def factorize(self, matrix: Any, use_lapack: bool = True) -> LinearSolver:
        del use_lapack  # jax always factorizes through its own LU
        return JaxLUSolver(self.asarray(matrix, dtype=self.xp.float64))

    # -- transforms -------------------------------------------------------

    def jit(self, fn: Callable, **kwargs) -> Callable:
        return jax.jit(fn, **kwargs)

    def vmap(self, fn: Callable, **kwargs) -> Callable:
        return jax.vmap(fn, **kwargs)

"""Backend registry and resolution for the array seam.

Resolution order for :func:`get_backend`: an explicit argument wins,
then the ``REPRO_BACKEND`` environment variable, then the numpy
default.  Unknown names and unavailable optional backends raise
:class:`~repro.errors.ConfigurationError` eagerly, at resolution time,
so a bad ``--backend``/env value fails before any simulation work.

``numpy_xp`` re-exports the ``numpy`` module itself as the sanctioned
namespace handle for seam-managed kernels (they spell it
``from ..backend import numpy_xp as np``), keeping the default path the
literal numpy module while letting ``scripts/lint_backend_seam.py``
forbid direct ``import numpy`` there.
"""

from __future__ import annotations

import os

import numpy as numpy_xp

from ..errors import ConfigurationError
from .base import BACKEND_NAMES, ArrayBackend, LinearSolver
from .jax_backend import HAVE_JAX, JAX_MISSING_MSG, JaxBackend
from .numpy_backend import HAVE_SCIPY, DenseSolver, NumpyBackend, NumpyLUSolver

#: Environment variable consulted when no explicit backend is given.
ENV_BACKEND = "REPRO_BACKEND"

_DEFAULT = NumpyBackend()

__all__ = [
    "ArrayBackend",
    "BACKEND_NAMES",
    "DenseSolver",
    "ENV_BACKEND",
    "HAVE_JAX",
    "HAVE_SCIPY",
    "JaxBackend",
    "LinearSolver",
    "NumpyBackend",
    "NumpyLUSolver",
    "backend_available",
    "default_backend",
    "get_backend",
    "numpy_xp",
]


def default_backend() -> NumpyBackend:
    """The process-default in-place numpy backend (a shared instance)."""
    return _DEFAULT


def backend_available(name: str) -> bool:
    """Whether ``name`` can actually be constructed in this process."""
    if name == "numpy":
        return True
    if name == "jax":
        return HAVE_JAX
    return False


def get_backend(spec: "str | ArrayBackend | None" = None) -> ArrayBackend:
    """Resolve a backend from an explicit spec, the environment, or default.

    Args:
        spec: ``None`` (consult ``REPRO_BACKEND``, default numpy), a
            registry name from :data:`BACKEND_NAMES`, or an already
            constructed :class:`ArrayBackend` (returned as-is).

    Raises:
        ConfigurationError: for unknown names or for ``"jax"`` when jax
            is not installed.
    """
    if isinstance(spec, ArrayBackend):
        return spec
    if spec is None:
        spec = os.environ.get(ENV_BACKEND) or "numpy"
    name = str(spec).strip().lower()
    if name == "numpy":
        return _DEFAULT
    if name == "jax":
        if not HAVE_JAX:
            raise ConfigurationError(JAX_MISSING_MSG)
        return JaxBackend()
    raise ConfigurationError(
        f"unknown backend {spec!r}; expected one of {', '.join(BACKEND_NAMES)}"
    )

"""Processor specifications and DVFS frequency ladders.

The SUT socket is the AMD Opteron X2150: 22 W TDP, P-states from
1100 MHz to 1900 MHz in 200 MHz steps.  The top two states (1700 and
1900 MHz) are opportunistic boost states; a fully loaded socket at
reasonable ambient temperature is only expected to sustain 1500 MHz
(paper Section III-D, citing the BKDG).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..errors import ConfigurationError


@dataclass(frozen=True)
class FrequencyLadder:
    """An ordered set of DVFS states.

    Attributes:
        states_mhz: Available frequencies in ascending order, MHz.
        sustained_mhz: Highest non-boost frequency; states above it are
            opportunistic boost states used when thermal headroom exists.
    """

    states_mhz: Tuple[int, ...]
    sustained_mhz: int

    def __post_init__(self) -> None:
        if len(self.states_mhz) < 1:
            raise ConfigurationError("a frequency ladder needs >= 1 state")
        if list(self.states_mhz) != sorted(set(self.states_mhz)):
            raise ConfigurationError(
                "frequency states must be strictly ascending"
            )
        if self.sustained_mhz not in self.states_mhz:
            raise ConfigurationError(
                f"sustained frequency {self.sustained_mhz} MHz is not a "
                f"ladder state"
            )

    @property
    def min_mhz(self) -> int:
        """Lowest available frequency, MHz."""
        return self.states_mhz[0]

    @property
    def max_mhz(self) -> int:
        """Highest available frequency (top boost state), MHz."""
        return self.states_mhz[-1]

    @property
    def boost_states_mhz(self) -> Tuple[int, ...]:
        """Frequencies above the sustained state, MHz."""
        return tuple(
            f for f in self.states_mhz if f > self.sustained_mhz
        )

    def is_boost(self, mhz: int) -> bool:
        """Whether ``mhz`` is a boost state."""
        return mhz > self.sustained_mhz

    def highest_not_above(self, mhz_limit: float) -> int:
        """Highest ladder state not exceeding ``mhz_limit``.

        Falls back to the minimum state when even it exceeds the limit
        (the power manager never stops the clock entirely).
        """
        best = self.states_mhz[0]
        for state in self.states_mhz:
            if state <= mhz_limit:
                best = state
        return best

    def step_down(self, mhz: int) -> int:
        """The next lower state, or the minimum state if already there."""
        if mhz not in self.states_mhz:
            raise ConfigurationError(f"{mhz} MHz is not a ladder state")
        index = self.states_mhz.index(mhz)
        return self.states_mhz[max(index - 1, 0)]

    def step_up(self, mhz: int) -> int:
        """The next higher state, or the maximum state if already there."""
        if mhz not in self.states_mhz:
            raise ConfigurationError(f"{mhz} MHz is not a ladder state")
        index = self.states_mhz.index(mhz)
        return self.states_mhz[min(index + 1, len(self.states_mhz) - 1)]


@dataclass(frozen=True)
class ProcessorSpec:
    """A CPU socket product, as listed in Table I.

    Attributes:
        name: Marketing name.
        tdp_w: Thermal design power, W.
        ladder: DVFS ladder; None for catalog-only parts we never
            simulate in detail.
    """

    name: str
    tdp_w: float
    ladder: "FrequencyLadder | None" = None

    def __post_init__(self) -> None:
        if self.tdp_w <= 0:
            raise ConfigurationError(
                f"TDP must be positive, got {self.tdp_w}"
            )


#: The SUT processor's DVFS ladder (product data sheet / BKDG).
X2150_LADDER = FrequencyLadder(
    states_mhz=(1100, 1300, 1500, 1700, 1900),
    sustained_mhz=1500,
)

#: The SUT processor: AMD Opteron X2150, 22 W TDP.
OPTERON_X2150 = ProcessorSpec(
    name="AMD Opteron X2150", tdp_w=22.0, ladder=X2150_LADDER
)

"""Rack-level thermal model: vertical coupling between chassis.

The paper situates dense servers inside the wider data-center thermal
problem: "at the data-center level, thermal coupling occurs vertically
among servers in a rack" (Choi et al.).  This module models that outer
layer with the same first-law machinery used inside the chassis: part
of each chassis's exhaust heat recirculates into the intake of the
chassis above it, so the intra-server inlet temperature (Table III's
18 degC) is really a function of rack placement and the load of the
chassis below.

The model composes with the socket-level simulation: compute per-chassis
inlet temperatures here, then run :class:`repro.sim.engine.Simulation`
per chassis with ``params.with_overrides(inlet_c=...)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..errors import TopologyError
from ..units import AIR_HEATING_CONSTANT


@dataclass(frozen=True)
class ChassisSlot:
    """One chassis position in the rack, bottom first.

    Attributes:
        name: Identifier (e.g. ``"chassis-0"``).
        airflow_cfm: Chassis airflow, CFM.
        max_power_w: Power at full load, W.
    """

    name: str
    airflow_cfm: float = 400.0
    max_power_w: float = 3600.0

    def __post_init__(self) -> None:
        if self.airflow_cfm <= 0:
            raise TopologyError("chassis airflow must be positive")
        if self.max_power_w <= 0:
            raise TopologyError("chassis power must be positive")

    def exhaust_rise_c(self, power_w: float) -> float:
        """Outlet-inlet temperature rise at a power draw, degC."""
        if power_w < 0:
            raise TopologyError("power must be non-negative")
        return AIR_HEATING_CONSTANT * power_w / self.airflow_cfm


class RackModel:
    """A stack of chassis with upward exhaust recirculation.

    Attributes:
        slots: Chassis from bottom to top.
        room_inlet_c: Cold-aisle air temperature, degC.
        recirculation: Fraction of a chassis's exhaust temperature rise
            that reaches the intake of the chassis directly above
            (0 = perfect containment).
    """

    def __init__(
        self,
        slots: Sequence[ChassisSlot],
        room_inlet_c: float = 18.0,
        recirculation: float = 0.15,
    ):
        if not slots:
            raise TopologyError("a rack needs >= 1 chassis")
        if not 0.0 <= recirculation < 1.0:
            raise TopologyError("recirculation must lie in [0, 1)")
        self.slots = list(slots)
        self.room_inlet_c = room_inlet_c
        self.recirculation = recirculation

    @property
    def n_chassis(self) -> int:
        """Number of chassis in the rack."""
        return len(self.slots)

    def chassis_inlets(
        self, power_w: Sequence[float]
    ) -> np.ndarray:
        """Intake air temperature of each chassis, bottom first.

        The bottom chassis breathes cold-aisle air; each higher chassis
        additionally ingests a fraction of the (cumulative) exhaust
        excess of the chassis below it.

        Raises:
            TopologyError: for a power vector of the wrong length.
        """
        powers = list(power_w)
        if len(powers) != self.n_chassis:
            raise TopologyError(
                f"expected {self.n_chassis} powers, got {len(powers)}"
            )
        inlets = np.empty(self.n_chassis)
        inlets[0] = self.room_inlet_c
        for i in range(1, self.n_chassis):
            below = self.slots[i - 1]
            outlet_excess = (
                inlets[i - 1]
                - self.room_inlet_c
                + below.exhaust_rise_c(powers[i - 1])
            )
            inlets[i] = (
                self.room_inlet_c
                + self.recirculation * outlet_excess
            )
        return inlets

    def worst_inlet_c(self, power_w: Sequence[float]) -> float:
        """Hottest chassis intake for a power distribution, degC."""
        return float(self.chassis_inlets(power_w).max())

    def assign_load(
        self, total_load: float, policy: str = "top-down"
    ) -> List[float]:
        """Distribute a rack-level load across chassis.

        Policies mirror the paper's intra-server findings one level up:

        - ``"top-down"`` — fill from the top chassis (whose exhaust
          recirculates onto nobody) downward: the rack-level analogue
          of HF/MinHR.
        - ``"bottom-up"`` — fill from the bottom (the naive/cable-
          friendly default): every loaded chassis pre-heats the ones
          above.
        - ``"uniform"`` — spread evenly.

        Args:
            total_load: Rack load in [0, n_chassis] chassis-equivalents.
            policy: One of the documented policies.

        Returns:
            Per-chassis load fractions in [0, 1], bottom first.

        Raises:
            TopologyError: for unknown policies or out-of-range loads.
        """
        if not 0.0 <= total_load <= self.n_chassis:
            raise TopologyError(
                f"rack load must lie in [0, {self.n_chassis}]"
            )
        loads = [0.0] * self.n_chassis
        if policy == "uniform":
            return [total_load / self.n_chassis] * self.n_chassis
        if policy == "top-down":
            order = range(self.n_chassis - 1, -1, -1)
        elif policy == "bottom-up":
            order = range(self.n_chassis)
        else:
            raise TopologyError(f"unknown rack policy {policy!r}")
        remaining = total_load
        for index in order:
            loads[index] = min(remaining, 1.0)
            remaining -= loads[index]
            if remaining <= 0:
                break
        return loads

    def inlets_for_load(
        self, total_load: float, policy: str = "top-down"
    ) -> np.ndarray:
        """Chassis inlets after distributing a load with a policy."""
        loads = self.assign_load(total_load, policy)
        powers = [
            load * slot.max_power_w
            for load, slot in zip(loads, self.slots)
        ]
        return self.chassis_inlets(powers)


def moonshot_rack(
    n_chassis: int = 8,
    room_inlet_c: float = 18.0,
    recirculation: float = 0.15,
) -> RackModel:
    """A rack of Moonshot-like 4U chassis (8 x 4U fills 32U of rack)."""
    slots = [
        ChassisSlot(
            name=f"chassis-{i}", airflow_cfm=400.0, max_power_w=3600.0
        )
        for i in range(n_chassis)
    ]
    return RackModel(
        slots, room_inlet_c=room_inlet_c, recirculation=recirculation
    )

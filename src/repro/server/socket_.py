"""Socket specification: processor + heat sink + idle behaviour."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..thermal.heatsink import HeatSink
from .processors import ProcessorSpec

#: Fraction of TDP a power-gated idle socket still draws (paper §III-D).
DEFAULT_GATED_POWER_FRACTION = 0.10


@dataclass(frozen=True)
class SocketSpec:
    """A populated socket in a density optimized server.

    Attributes:
        processor: The CPU product installed in the socket.
        sink: The heat sink bolted onto it (18- or 30-fin in the SUT).
        gated_power_fraction: Fraction of TDP drawn while power gated.
    """

    processor: ProcessorSpec
    sink: HeatSink
    gated_power_fraction: float = DEFAULT_GATED_POWER_FRACTION

    def __post_init__(self) -> None:
        if not 0.0 <= self.gated_power_fraction < 1.0:
            raise ConfigurationError(
                "gated power fraction must lie in [0, 1), got "
                f"{self.gated_power_fraction}"
            )

    @property
    def tdp_w(self) -> float:
        """Socket TDP, W."""
        return self.processor.tdp_w

    @property
    def gated_power_w(self) -> float:
        """Power drawn while idle and power gated, W."""
        return self.gated_power_fraction * self.processor.tdp_w

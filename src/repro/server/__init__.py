"""Server substrate: processors, sockets, cartridges and topologies.

- :mod:`repro.server.processors` — processor specifications (Table I
  CPUs) and the DVFS frequency ladder of the AMD Opteron X2150.
- :mod:`repro.server.socket_` — a socket: processor + heat sink + idle
  power-gating behaviour.
- :mod:`repro.server.topology` — geometric organisation of sockets into
  lanes, cartridges, zones and rows, including the 180-socket
  Moonshot-M700-like system under test (SUT) and the 2-socket
  motivational configurations of Figure 3.
- :mod:`repro.server.catalog` — the density-optimized systems of Table I.
"""

from .processors import (
    FrequencyLadder,
    ProcessorSpec,
    OPTERON_X2150,
    X2150_LADDER,
)
from .socket_ import SocketSpec
from .topology import (
    ServerTopology,
    SocketSite,
    moonshot_sut,
    two_socket_system,
)
from .catalog import DensityOptimizedSystem, TABLE_I_SYSTEMS
from .rack import ChassisSlot, RackModel, moonshot_rack

__all__ = [
    "FrequencyLadder",
    "ProcessorSpec",
    "OPTERON_X2150",
    "X2150_LADDER",
    "SocketSpec",
    "ServerTopology",
    "SocketSite",
    "moonshot_sut",
    "two_socket_system",
    "DensityOptimizedSystem",
    "TABLE_I_SYSTEMS",
    "ChassisSlot",
    "RackModel",
    "moonshot_rack",
]

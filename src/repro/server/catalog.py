"""Catalog of recent density optimized server systems (paper Table I)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..errors import ConfigurationError


@dataclass(frozen=True)
class DensityOptimizedSystem:
    """One row of Table I.

    Attributes:
        organization: Vendor / organisation.
        system: Product family.
        details: Specific model or configuration.
        application_domain: Intended workload domain.
        height_u: Chassis height in rack units.
        system_organization: Human-readable modular breakdown, e.g.
            ``"15 row x 3 cartridge x 4 socket"``.
        total_sockets: Socket count in the chassis.
        socket_tdp_w: Per-socket TDP, W.
        cpu: Processor product name.
        degree_of_coupling: Maximum number of sockets a fully upstream
            socket can thermally influence.
    """

    organization: str
    system: str
    details: str
    application_domain: str
    height_u: int
    system_organization: str
    total_sockets: int
    socket_tdp_w: float
    cpu: str
    degree_of_coupling: int

    def __post_init__(self) -> None:
        if self.height_u <= 0:
            raise ConfigurationError("height_u must be positive")
        if self.total_sockets <= 0:
            raise ConfigurationError("total_sockets must be positive")
        if self.socket_tdp_w <= 0:
            raise ConfigurationError("socket_tdp_w must be positive")
        if self.degree_of_coupling < 1:
            raise ConfigurationError("degree_of_coupling must be >= 1")

    @property
    def sockets_per_u(self) -> float:
        """Socket density, sockets per rack unit."""
        return self.total_sockets / self.height_u

    @property
    def power_per_u_w(self) -> float:
        """Aggregate socket TDP per rack unit, W/U."""
        return self.total_sockets * self.socket_tdp_w / self.height_u


#: Table I of the paper, verbatim.
TABLE_I_SYSTEMS: Tuple[DensityOptimizedSystem, ...] = (
    DensityOptimizedSystem(
        organization="QCT/Facebook",
        system="Rackgo X",
        details="Open compute server",
        application_domain="General purpose",
        height_u=2,
        system_organization="2 tray x 3 blade x 2 socket",
        total_sockets=12,
        socket_tdp_w=45.0,
        cpu="Intel Xeon D-1500",
        degree_of_coupling=1,
    ),
    DensityOptimizedSystem(
        organization="AMD",
        system="AMD SeaMicro",
        details="SM15000e-OP",
        application_domain="Scale-out applications",
        height_u=10,
        system_organization="4 row x 16 card x 1 socket",
        total_sockets=64,
        socket_tdp_w=140.0,
        cpu="AMD Opteron 6300",
        degree_of_coupling=1,
    ),
    DensityOptimizedSystem(
        organization="Cisco",
        system="UCS M4308",
        details="M2814",
        application_domain="Scale-out applications",
        height_u=2,
        system_organization="2 row x 2 card x 2 socket",
        total_sockets=8,
        socket_tdp_w=120.0,
        cpu="Intel Xeon E5",
        degree_of_coupling=1,
    ),
    DensityOptimizedSystem(
        organization="HP Enterprise",
        system="Moonshot",
        details="ProLiant M710P",
        application_domain="Big data analytics",
        height_u=4,
        system_organization="15 row x 3 cartridge x 1 socket",
        total_sockets=45,
        socket_tdp_w=69.0,
        cpu="Intel Xeon E3",
        degree_of_coupling=2,
    ),
    DensityOptimizedSystem(
        organization="Dell",
        system="Copper",
        details="Prototype system",
        application_domain="Scale-out applications",
        height_u=3,
        system_organization="12 sled x 4 socket",
        total_sockets=48,
        socket_tdp_w=15.0,
        cpu="32-bit ARM",
        degree_of_coupling=3,
    ),
    DensityOptimizedSystem(
        organization="Mitac",
        system="Datun project",
        details="Prototype system",
        application_domain="Scale-out applications",
        height_u=1,
        system_organization="2 row x 4 socket",
        total_sockets=8,
        socket_tdp_w=50.0,
        cpu="Applied Micro X-Gene",
        degree_of_coupling=3,
    ),
    DensityOptimizedSystem(
        organization="Seamicro",
        system="SeaMicro",
        details="SM15000-64",
        application_domain="Scale-out applications",
        height_u=10,
        system_organization="4 row x 16 card x 4 socket",
        total_sockets=256,
        socket_tdp_w=8.5,
        cpu="Intel Atom N570",
        degree_of_coupling=3,
    ),
    DensityOptimizedSystem(
        organization="HP Enterprise",
        system="Moonshot",
        details="ProLiant M350",
        application_domain="Web hosting",
        height_u=4,
        system_organization="15 row x 3 cartridge x 4 socket",
        total_sockets=180,
        socket_tdp_w=20.0,
        cpu="Intel Atom C2750",
        degree_of_coupling=5,
    ),
    DensityOptimizedSystem(
        organization="HP Enterprise",
        system="Moonshot",
        details="ProLiant M700",
        application_domain="Virtual desktop (VDI)",
        height_u=4,
        system_organization="15 row x 3 cartridge x 4 socket",
        total_sockets=180,
        socket_tdp_w=22.0,
        cpu="AMD Opteron X2150",
        degree_of_coupling=5,
    ),
    DensityOptimizedSystem(
        organization="HP Enterprise",
        system="Moonshot",
        details="ProLiant M800",
        application_domain="Digital signal processing",
        height_u=4,
        system_organization="15 row x 3 cartridge x 4 socket",
        total_sockets=180,
        socket_tdp_w=14.0,
        cpu="TI Keystone II",
        degree_of_coupling=5,
    ),
    DensityOptimizedSystem(
        organization="HP",
        system="Redstone",
        details="Development server",
        application_domain="Scale-out applications",
        height_u=4,
        system_organization="4 tray x 6 row x 3 cartridge x 4 socket",
        total_sockets=288,
        socket_tdp_w=5.0,
        cpu="Calxeda EnergyCore",
        degree_of_coupling=11,
    ),
)


def find_system(details: str) -> DensityOptimizedSystem:
    """Look up a Table I system by its ``details`` string.

    Raises:
        ConfigurationError: if no system matches.
    """
    for system in TABLE_I_SYSTEMS:
        if system.details == details:
            return system
    raise ConfigurationError(f"no Table I system with details {details!r}")

"""Server topology: sockets organised into lanes, cartridges and zones.

The SUT (Figure 12) has 15 rows; each row holds 3 cartridges in series
along the airflow direction, and each cartridge holds 4 sockets in a
2 x 2 arrangement — 2 side-by-side *lanes* of 2 sockets deep.  A lane
therefore contains a chain of 6 thermally coupled sockets; the chain is
divided into zones 1-6, with odd zones carrying the 18-fin heat sink and
even zones the better 30-fin sink.  Sockets within a cartridge sit 1.6 in
apart; adjacent cartridges are ~3 in apart, so inter-cartridge coupling
is weaker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import TopologyError
from ..thermal.coupling import (
    CouplingChain,
    DEFAULT_INTER_CARTRIDGE_DECAY,
    DEFAULT_INTRA_CARTRIDGE_DECAY,
    DEFAULT_MIXING_FACTOR,
    CouplingMatrix,
)
from ..thermal.heatsink import FIN_18, FIN_30, HeatSink
from .processors import OPTERON_X2150, ProcessorSpec
from .socket_ import SocketSpec

#: Airflow over each socket in the SUT, CFM (Table III, Icepak-derived).
DEFAULT_SOCKET_AIRFLOW_CFM = 6.35

#: Spacing between sockets within a cartridge, inches.
INTRA_CARTRIDGE_SPACING_IN = 1.6

#: Spacing between adjacent sockets of neighbouring cartridges, inches.
INTER_CARTRIDGE_SPACING_IN = 3.0

#: Vertical spacing between stacked rows, inches (15 rows in 4U = 7 in).
ROW_SPACING_IN = 0.47

#: Lateral spacing between the two lanes of a cartridge, inches.
LANE_SPACING_IN = 2.0


@dataclass(frozen=True)
class SocketSite:
    """One physical socket position in the server.

    Attributes:
        socket_id: Global index, 0-based.
        row: Row of cartridges this socket belongs to, 0-based.
        lane: Side-by-side lane within the row, 0-based.
        chain_pos: Position along the airflow direction, 0 = most
            upstream.
        zone: 1-based zone number (``chain_pos + 1``), per Figure 12.
        cartridge: Cartridge index along the airflow direction, 0-based.
        x_in: Distance from the air inlet, inches.
        y_in: Vertical position (row stacking), inches.
        z_in: Lateral position (lane), inches.
        spec: Socket specification (processor + heat sink).
    """

    socket_id: int
    row: int
    lane: int
    chain_pos: int
    zone: int
    cartridge: int
    x_in: float
    y_in: float
    z_in: float
    spec: SocketSpec

    @property
    def sink(self) -> HeatSink:
        """Heat sink at this site."""
        return self.spec.sink

    def distance_to(self, other: "SocketSite") -> float:
        """Euclidean distance to another site, inches."""
        return float(
            np.sqrt(
                (self.x_in - other.x_in) ** 2
                + (self.y_in - other.y_in) ** 2
                + (self.z_in - other.z_in) ** 2
            )
        )


def _chain_x_positions(chain_length: int, sockets_per_cartridge: int) -> List[float]:
    """Distance of each chain position from the inlet, inches."""
    positions = []
    x = 0.0
    for pos in range(chain_length):
        if pos > 0:
            within = pos % sockets_per_cartridge != 0
            x += (
                INTRA_CARTRIDGE_SPACING_IN
                if within
                else INTER_CARTRIDGE_SPACING_IN
            )
        positions.append(x)
    return positions


class ServerTopology:
    """A grid of thermally coupled socket lanes.

    The topology owns geometry only: which sockets exist, where they sit,
    which sink each carries, and how lanes chain along the airflow
    direction.  Thermal state and scheduling live elsewhere.
    """

    def __init__(
        self,
        n_rows: int,
        lanes_per_row: int,
        chain_length: int,
        processor: ProcessorSpec = OPTERON_X2150,
        sockets_per_cartridge_depth: int = 2,
        socket_airflow_cfm: float = DEFAULT_SOCKET_AIRFLOW_CFM,
        mixing_factor: float = DEFAULT_MIXING_FACTOR,
        intra_cartridge_decay: float = DEFAULT_INTRA_CARTRIDGE_DECAY,
        inter_cartridge_decay: float = DEFAULT_INTER_CARTRIDGE_DECAY,
        alternate_sinks: bool = True,
        uniform_sink: "HeatSink | None" = None,
        sink_for_site=None,
    ):
        """Build a topology.

        Args:
            n_rows: Number of cartridge rows.
            lanes_per_row: Independent airflow lanes per row.
            chain_length: Sockets per lane along the airflow direction.
            processor: CPU installed in every socket.
            sockets_per_cartridge_depth: How many chain positions one
                cartridge spans (2 for the M700).
            socket_airflow_cfm: Airflow over each socket, CFM.
            mixing_factor: Local air mixing factor for coupling.
            intra_cartridge_decay: Excess-air-temperature retention
                across an intra-cartridge gap.
            inter_cartridge_decay: Retention across an inter-cartridge
                gap.
            alternate_sinks: Give odd zones the 18-fin sink and even
                zones the 30-fin sink (the M700 arrangement).
            uniform_sink: If set, install this sink everywhere and ignore
                ``alternate_sinks`` (used by ablations).
            sink_for_site: Optional callable ``(row, lane, chain_pos) ->
                HeatSink`` that overrides every other sink rule (used by
                the Figure 3 uncoupled configuration, which keeps both
                sink types without a shared air stream).
        """
        if n_rows < 1 or lanes_per_row < 1 or chain_length < 1:
            raise TopologyError(
                "rows, lanes and chain length must all be >= 1"
            )
        if sockets_per_cartridge_depth < 1:
            raise TopologyError("cartridge depth must be >= 1")
        if socket_airflow_cfm <= 0:
            raise TopologyError("socket airflow must be positive")

        self.n_rows = n_rows
        self.lanes_per_row = lanes_per_row
        self.chain_length = chain_length
        self.processor = processor
        self.sockets_per_cartridge_depth = sockets_per_cartridge_depth
        self.socket_airflow_cfm = socket_airflow_cfm
        self.mixing_factor = mixing_factor
        self.intra_cartridge_decay = intra_cartridge_decay
        self.inter_cartridge_decay = inter_cartridge_decay

        x_positions = _chain_x_positions(
            chain_length, sockets_per_cartridge_depth
        )
        sites: List[SocketSite] = []
        socket_id = 0
        for row in range(n_rows):
            for lane in range(lanes_per_row):
                for pos in range(chain_length):
                    zone = pos + 1
                    if sink_for_site is not None:
                        sink = sink_for_site(row, lane, pos)
                    elif uniform_sink is not None:
                        sink = uniform_sink
                    elif alternate_sinks:
                        sink = FIN_18 if zone % 2 == 1 else FIN_30
                    else:
                        sink = FIN_18
                    sites.append(
                        SocketSite(
                            socket_id=socket_id,
                            row=row,
                            lane=lane,
                            chain_pos=pos,
                            zone=zone,
                            cartridge=pos // sockets_per_cartridge_depth,
                            x_in=x_positions[pos],
                            y_in=row * ROW_SPACING_IN,
                            z_in=lane * LANE_SPACING_IN,
                            spec=SocketSpec(processor=processor, sink=sink),
                        )
                    )
                    socket_id += 1
        self.sites: Tuple[SocketSite, ...] = tuple(sites)

        # Vectorised per-socket attribute arrays for the simulation engine.
        self.zone_array = np.array([s.zone for s in self.sites])
        self.chain_pos_array = np.array([s.chain_pos for s in self.sites])
        self.row_array = np.array([s.row for s in self.sites])
        self.lane_array = np.array([s.lane for s in self.sites])
        self.x_array = np.array([s.x_in for s in self.sites])
        self.y_array = np.array([s.y_in for s in self.sites])
        self.z_array = np.array([s.z_in for s in self.sites])
        self.r_ext_array = np.array([s.sink.r_ext for s in self.sites])
        self.theta_offset_array = np.array(
            [s.sink.theta_offset for s in self.sites]
        )
        self.theta_slope_array = np.array(
            [s.sink.theta_slope for s in self.sites]
        )
        self.tdp_array = np.array([s.spec.tdp_w for s in self.sites])
        self.gated_power_array = np.array(
            [s.spec.gated_power_w for s in self.sites]
        )

        self._coupling = CouplingMatrix(
            len(self.sites), self.coupling_chains()
        )

    @property
    def n_sockets(self) -> int:
        """Total socket count."""
        return len(self.sites)

    @property
    def n_zones(self) -> int:
        """Number of zones (equals chain length)."""
        return self.chain_length

    @property
    def coupling(self) -> CouplingMatrix:
        """Whole-server coupling matrix."""
        return self._coupling

    def coupling_chains(self) -> List[CouplingChain]:
        """One coupling chain per (row, lane), in airflow order."""
        chains = []
        for row in range(self.n_rows):
            for lane in range(self.lanes_per_row):
                ids = [
                    s.socket_id
                    for s in self.sites
                    if s.row == row and s.lane == lane
                ]
                ids.sort(key=lambda i: self.sites[i].chain_pos)
                decays = [1.0]
                for pos in range(1, len(ids)):
                    within = pos % self.sockets_per_cartridge_depth != 0
                    decays.append(
                        self.intra_cartridge_decay
                        if within
                        else self.inter_cartridge_decay
                    )
                chains.append(
                    CouplingChain(
                        socket_ids=ids,
                        airflow_cfm=self.socket_airflow_cfm,
                        mixing_factor=self.mixing_factor,
                        gap_decays=decays,
                    )
                )
        return chains

    def sockets_in_row(self, row: int) -> np.ndarray:
        """Socket indices of every socket in a row."""
        if not 0 <= row < self.n_rows:
            raise TopologyError(f"row {row} out of range 0..{self.n_rows - 1}")
        return np.nonzero(self.row_array == row)[0]

    def sockets_in_zone(self, zone: int) -> np.ndarray:
        """Socket indices of every socket in a 1-based zone."""
        if not 1 <= zone <= self.n_zones:
            raise TopologyError(
                f"zone {zone} out of range 1..{self.n_zones}"
            )
        return np.nonzero(self.zone_array == zone)[0]

    def front_half_mask(self) -> np.ndarray:
        """Boolean mask of sockets in the front half of the chain."""
        return self.zone_array <= (self.n_zones + 1) // 2

    def even_zone_mask(self) -> np.ndarray:
        """Boolean mask of sockets in even zones (better heat sink)."""
        return self.zone_array % 2 == 0

    def total_airflow_cfm(self) -> float:
        """Total airflow through the server, CFM."""
        return self.socket_airflow_cfm * self.n_rows * self.lanes_per_row


def moonshot_sut(
    processor: ProcessorSpec = OPTERON_X2150,
    n_rows: int = 15,
    **kwargs,
) -> ServerTopology:
    """The paper's 180-socket Moonshot-M700-like system under test.

    15 rows x 2 lanes x 6 chain positions (3 cartridges of 2 x 2 sockets)
    with alternating 18-/30-fin sinks.  Pass a smaller ``n_rows`` for
    scaled-down experiments; all other structure is preserved.
    """
    return ServerTopology(
        n_rows=n_rows,
        lanes_per_row=2,
        chain_length=6,
        processor=processor,
        sockets_per_cartridge_depth=2,
        **kwargs,
    )


def two_socket_system(
    coupled: bool,
    processor: ProcessorSpec = OPTERON_X2150,
    **kwargs,
) -> ServerTopology:
    """The 2-socket motivational systems of Figure 3.

    ``coupled=True`` arranges both sockets in one airflow chain (like a
    cartridge): an 18-fin sink upstream, a 30-fin sink downstream.
    ``coupled=False`` puts each socket in its own lane (like a
    traditional 1U 2-socket server) — same sinks, no interaction.
    """
    if coupled:
        return ServerTopology(
            n_rows=1,
            lanes_per_row=1,
            chain_length=2,
            processor=processor,
            sockets_per_cartridge_depth=2,
            **kwargs,
        )
    return ServerTopology(
        n_rows=1,
        lanes_per_row=2,
        chain_length=1,
        processor=processor,
        sockets_per_cartridge_depth=1,
        sink_for_site=lambda row, lane, pos: FIN_18 if lane == 0 else FIN_30,
        **kwargs,
    )

"""Analytics: the Figure 1 server survey and capacity planning."""

from .survey import (
    ServerRecord,
    ServerClass,
    generate_population,
    class_statistics,
    ClassStatistics,
)
from .capacity import (
    DeratingPoint,
    derating_curve,
    max_sustainable_utilization,
    throttle_onset_zone,
)

__all__ = [
    "ServerRecord",
    "ServerClass",
    "generate_population",
    "class_statistics",
    "ClassStatistics",
    "DeratingPoint",
    "derating_curve",
    "max_sustainable_utilization",
    "throttle_onset_zone",
]

"""Capacity planning for thermally coupled servers.

Built on the closed-form steady-state solver, these utilities answer
the questions a deployer of a density optimized server asks before any
scheduling happens:

- *How much uniform load can this box sustain* before some socket's
  steady chip temperature crosses the throttle limit (or the boost
  governor threshold)?
- *How does that capacity derate with inlet temperature* — the knob a
  data-center operator actually controls?

Both reduce to monotone root finding over the utilisation axis, which
the steady-state field makes cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..config.parameters import SimulationParameters
from ..errors import ReproError
from ..server.topology import ServerTopology
from ..sim.power_manager import dynamic_power
from ..sim.steady_state import uniform_load_field
from ..workloads.benchmark import BenchmarkSet, profile_for
from ..workloads.power_model import LEAKAGE_TDP_FRACTION

#: Bisection tolerance on the utilisation axis.
UTILIZATION_TOLERANCE = 1e-3


def sustained_dynamic_power_w(
    benchmark_set: BenchmarkSet, tdp_w: float = 22.0
) -> float:
    """Dynamic power of a set's average job at the sustained state, W."""
    profile = profile_for(benchmark_set)
    dyn_max = profile.power_at_max_w - LEAKAGE_TDP_FRACTION * tdp_w
    return float(dynamic_power(1500.0, dyn_max, profile.dynamic_exponent, 1900.0))


def max_sustainable_utilization(
    topology: ServerTopology,
    params: SimulationParameters,
    benchmark_set: BenchmarkSet = BenchmarkSet.COMPUTATION,
    limit_c: float = None,
) -> float:
    """Largest uniform utilisation with every steady chip under a limit.

    Args:
        topology: Server geometry.
        params: Simulation parameters (inlet temperature matters most).
        benchmark_set: Workload whose sustained power is applied.
        limit_c: Temperature ceiling; defaults to the DVFS limit.

    Returns:
        Utilisation in [0, 1]; 1.0 means the limit never binds, 0.0
        means even an idle (gated) server violates it.
    """
    ceiling = (
        params.temperature_limit_c if limit_c is None else limit_c
    )
    dynamic = sustained_dynamic_power_w(benchmark_set)

    def hottest(util: float) -> float:
        field = uniform_load_field(topology, params, util, dynamic)
        return float(field.chip_c.max())

    if hottest(0.0) > ceiling:
        return 0.0
    if hottest(1.0) <= ceiling:
        return 1.0
    low, high = 0.0, 1.0
    while high - low > UTILIZATION_TOLERANCE:
        mid = (low + high) / 2.0
        if hottest(mid) <= ceiling:
            low = mid
        else:
            high = mid
    return low


@dataclass(frozen=True)
class DeratingPoint:
    """Sustainable utilisation at one inlet temperature.

    Attributes:
        inlet_c: Server inlet air temperature, degC.
        max_utilization: Largest sustainable uniform utilisation.
    """

    inlet_c: float
    max_utilization: float


def derating_curve(
    topology: ServerTopology,
    params: SimulationParameters,
    inlets_c: Sequence[float],
    benchmark_set: BenchmarkSet = BenchmarkSet.COMPUTATION,
    limit_c: float = None,
) -> List[DeratingPoint]:
    """Sustainable utilisation as a function of inlet temperature.

    Raises:
        ReproError: for an empty inlet list.
    """
    if not inlets_c:
        raise ReproError("derating curve needs >= 1 inlet temperature")
    points = []
    for inlet in inlets_c:
        adjusted = params.with_overrides(inlet_c=float(inlet))
        points.append(
            DeratingPoint(
                inlet_c=float(inlet),
                max_utilization=max_sustainable_utilization(
                    topology, adjusted, benchmark_set, limit_c
                ),
            )
        )
    return points


def room_capacity_curve(room, crac_setpoints_c, **kwargs):
    """Room-level analogue of :func:`derating_curve`.

    The chassis curve derates against the *inlet* temperature the
    operator is assumed to deliver; the room curve derates against the
    *CRAC supply* temperature and lets recirculated exhaust set each
    chassis' actual inlet.  Delegates to
    :func:`repro.room.capacity.room_derating_curve` (imported lazily —
    the room layer builds on this module, not the other way round).

    Args:
        room: A :class:`repro.room.Room`.
        crac_setpoints_c: CRAC supply temperatures to sweep, degC.
        **kwargs: Forwarded (``placement``, ``benchmark_set``,
            ``limit_c``, ``seed``, ``mode``, ``backend``, ...).

    Returns:
        ``List[repro.room.RoomDeratingPoint]``.
    """
    from ..room.capacity import room_derating_curve

    return room_derating_curve(room, crac_setpoints_c, **kwargs)


def room_sustainable_load(room, crac_supply_c, **kwargs):
    """Room-level analogue of :func:`max_sustainable_utilization`.

    Delegates to
    :func:`repro.room.capacity.max_sustainable_room_load`; see
    :func:`room_capacity_curve` for the layering note.
    """
    from ..room.capacity import max_sustainable_room_load

    return max_sustainable_room_load(room, crac_supply_c, **kwargs)


def throttle_onset_zone(
    topology: ServerTopology,
    params: SimulationParameters,
    benchmark_set: BenchmarkSet = BenchmarkSet.COMPUTATION,
) -> Tuple[int, float]:
    """Which zone throttles first as uniform load rises, and at what load.

    Returns:
        ``(zone, utilization)`` — the 1-based zone containing the first
        socket to reach the limit, and the utilisation at which it does.
        Returns ``(0, 1.0)`` if no zone ever throttles.
    """
    util = max_sustainable_utilization(topology, params, benchmark_set)
    if util >= 1.0:
        return (0, 1.0)
    dynamic = sustained_dynamic_power_w(benchmark_set)
    probe = min(util + 2 * UTILIZATION_TOLERANCE, 1.0)
    field = uniform_load_field(topology, params, probe, dynamic)
    hottest = int(np.argmax(field.chip_c))
    return (int(topology.zone_array[hottest]), util)

"""Synthetic SPECpower-style server population (paper Figure 1).

The paper analyses 400 published SPECpower_ssj2008 results (2007-2016,
towers excluded) plus 10 density optimized designs from vendor
specifications, and reports per-class average power density and socket
density.  The raw submissions are not redistributable, so we synthesise
a population whose per-class *means match the paper exactly* (samples
are normalised after generation) with realistic dispersion.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..errors import ConfigurationError


class ServerClass(enum.Enum):
    """Server form-factor classes used in Figure 1."""

    U1 = "1U"
    U2 = "2U"
    OTHER = "Other"
    BLADE = "Blade"
    DENSITY_OPT = "DensityOpt"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class _ClassTemplate:
    count: int
    power_per_u_w: float
    sockets_per_u: float
    dispersion: float


#: Per-class targets from Section I: (count, W/U, sockets/U, CoV).
_TEMPLATES: Dict[ServerClass, _ClassTemplate] = {
    ServerClass.U1: _ClassTemplate(140, 208.0, 1.79, 0.35),
    ServerClass.U2: _ClassTemplate(160, 147.0, 1.15, 0.35),
    ServerClass.OTHER: _ClassTemplate(60, 114.0, 0.78, 0.40),
    ServerClass.BLADE: _ClassTemplate(40, 421.0, 3.47, 0.30),
    ServerClass.DENSITY_OPT: _ClassTemplate(10, 588.0, 25.0, 0.25),
}

#: First and last release years covered by the survey.
SURVEY_YEARS = (2007, 2016)


@dataclass(frozen=True)
class ServerRecord:
    """One surveyed server design.

    Attributes:
        name: Synthetic identifier.
        server_class: Form-factor class.
        year: Release year.
        power_per_u_w: Measured power density, W per rack unit.
        sockets_per_u: Socket density, sockets per rack unit.
    """

    name: str
    server_class: ServerClass
    year: int
    power_per_u_w: float
    sockets_per_u: float

    def __post_init__(self) -> None:
        if self.power_per_u_w <= 0 or self.sockets_per_u <= 0:
            raise ConfigurationError(
                f"{self.name}: densities must be positive"
            )


def generate_population(seed: int = 0) -> List[ServerRecord]:
    """Generate the full 410-server synthetic survey population.

    Per class, samples are lognormal around the paper's reported mean
    and then rescaled so the sample mean matches the target exactly.
    """
    rng = np.random.default_rng(seed)
    records: List[ServerRecord] = []
    for server_class, template in _TEMPLATES.items():
        sigma = np.sqrt(np.log(1.0 + template.dispersion**2))
        power = rng.lognormal(
            mean=np.log(template.power_per_u_w) - sigma**2 / 2,
            sigma=sigma,
            size=template.count,
        )
        power *= template.power_per_u_w / power.mean()
        sockets = rng.lognormal(
            mean=np.log(template.sockets_per_u) - sigma**2 / 2,
            sigma=sigma,
            size=template.count,
        )
        sockets *= template.sockets_per_u / sockets.mean()
        years = rng.integers(
            SURVEY_YEARS[0], SURVEY_YEARS[1] + 1, size=template.count
        )
        for i in range(template.count):
            records.append(
                ServerRecord(
                    name=f"{server_class.value}-{i:03d}",
                    server_class=server_class,
                    year=int(years[i]),
                    power_per_u_w=float(power[i]),
                    sockets_per_u=float(sockets[i]),
                )
            )
    return records


@dataclass(frozen=True)
class ClassStatistics:
    """Aggregate densities of one server class (a Figure 1 bar pair).

    Attributes:
        server_class: The class summarised.
        count: Number of designs.
        mean_power_per_u_w: Average power density, W/U.
        mean_sockets_per_u: Average socket density, sockets/U.
    """

    server_class: ServerClass
    count: int
    mean_power_per_u_w: float
    mean_sockets_per_u: float


def class_statistics(
    population: Sequence[ServerRecord],
) -> Dict[ServerClass, ClassStatistics]:
    """Per-class mean densities — the two panels of Figure 1."""
    if not population:
        raise ConfigurationError("population is empty")
    stats: Dict[ServerClass, ClassStatistics] = {}
    for server_class in ServerClass:
        members = [
            r for r in population if r.server_class == server_class
        ]
        if not members:
            continue
        stats[server_class] = ClassStatistics(
            server_class=server_class,
            count=len(members),
            mean_power_per_u_w=float(
                np.mean([r.power_per_u_w for r in members])
            ),
            mean_sockets_per_u=float(
                np.mean([r.sockets_per_u for r in members])
            ),
        )
    return stats

"""Command-line entry point: ``python -m repro``.

Subcommands:

- ``list`` — show every reproducible table/figure.
- ``run <name> [<name> ...]`` — regenerate specific artifacts.
- ``run --all`` / ``run --light`` — regenerate everything / only the
  analytical artifacts.
- ``schedulers`` — list the registered scheduling policies.
- ``sweep`` — run a custom scheduler x load x workload sweep and write
  the summaries to CSV/JSON.
- ``fleet serve`` / ``fleet query`` / ``fleet chaos`` — run the
  resilient multi-chassis fleet coordinator, query it over TCP, or
  drive it through a seeded chaos scenario and audit the invariants.
- ``room`` — room-scale sustainable load under CRAC supply
  temperature, heat recirculation and thermal-aware placement.
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from ._version import __version__
from .core import all_scheduler_names
from .experiments.registry import (
    all_experiments,
    get_experiment,
)


def _cmd_list(_args) -> int:
    for experiment in all_experiments():
        kind = "sim " if experiment.heavy else "fast"
        print(f"{experiment.name:8s} [{kind}] {experiment.title}")
    return 0


def _cmd_schedulers(_args) -> int:
    for name in all_scheduler_names():
        print(name)
    return 0


def _cmd_run(args) -> int:
    import os

    from .experiments.common import ENV_AUDIT, ENV_WORKERS

    # Experiments read their scale knobs from ExperimentConfig, which
    # honours these environment variables; the flags are a convenience
    # spelling of the same contract.
    if args.workers is not None:
        os.environ[ENV_WORKERS] = str(args.workers)
    if args.audit:
        os.environ[ENV_AUDIT] = "1"
    if args.telemetry:
        from .obs.session import ENV_TELEMETRY

        os.environ[ENV_TELEMETRY] = args.telemetry
    if args.profile:
        from .obs.session import ENV_PROFILE

        os.environ[ENV_PROFILE] = "1"
    if args.stepping is not None:
        from .experiments.common import ENV_STEPPING

        os.environ[ENV_STEPPING] = args.stepping
    if args.backend is not None:
        from .backend import ENV_BACKEND

        os.environ[ENV_BACKEND] = args.backend
    if args.all:
        experiments = all_experiments()
    elif args.light:
        experiments = all_experiments(include_heavy=False)
    else:
        if not args.names:
            print(
                "specify artifact names, or --all / --light",
                file=sys.stderr,
            )
            return 2
        experiments = [get_experiment(name) for name in args.names]
    for experiment in experiments:
        print(f"==> {experiment.name}: {experiment.title}")
        experiment.main()
        print()
    return 0


def _cmd_report(args) -> int:
    from .experiments.report import write_report

    path = write_report(args.out, include_heavy=args.heavy)
    print(f"wrote {path}")
    return 0


def _cmd_sweep(args) -> int:
    from .config.presets import scaled
    from .obs.session import profile_from_env
    from .server.topology import moonshot_sut
    from .sim.export import save_csv, save_json, sweep_summaries
    from .sim.runner import run_sweep
    from .workloads.benchmark import BenchmarkSet

    sets = [BenchmarkSet(name) for name in args.sets]
    topology = moonshot_sut(n_rows=args.rows)
    params = scaled(
        sim_time_s=args.sim_time,
        warmup_s=min(args.sim_time / 3.0, 8.0),
        seed=args.seed,
    )
    fault_schedule = None
    if args.faults:
        from .faults import parse_fault_spec

        fault_schedule = parse_fault_spec(
            args.faults,
            topology=topology,
            horizon_s=args.sim_time,
        )
        print(
            f"fault schedule: {len(fault_schedule)} event(s), "
            f"fingerprint {fault_schedule.fingerprint()[:16]}"
        )
    telemetry = args.telemetry
    if telemetry is None:
        from .obs.session import TelemetryConfig

        telemetry = TelemetryConfig.from_env()
    stepping = args.stepping
    if stepping is None:
        import os

        from .experiments.common import ENV_STEPPING

        stepping = os.environ.get(ENV_STEPPING) or "fixed"
    backend = args.backend
    if backend is None:
        import os

        from .backend import ENV_BACKEND

        backend = os.environ.get(ENV_BACKEND) or "numpy"
    results = run_sweep(
        topology,
        params,
        args.schemes,
        sets,
        args.loads,
        max_workers=args.workers or 1,
        audit=args.audit,
        fault_schedule=fault_schedule,
        checkpoint_dir=args.resume,
        telemetry=telemetry,
        profile=args.profile or profile_from_env(),
        stepping=stepping,
        backend=backend,
    )
    if args.csv:
        save_csv(results, args.csv)
        print(f"wrote {args.csv}")
    if args.json:
        save_json(results, args.json)
        print(f"wrote {args.json}")
    if not args.csv and not args.json:
        for row in sweep_summaries(results):
            print(
                f"{row['scheduler']:12s} {row['benchmark_set']:12s} "
                f"load={row['load']:.2f} "
                f"expansion={row['mean_runtime_expansion']:.4f} "
                f"power={row['average_power_w']:.0f}W"
            )
    return 0


def _fleet_policy(args):
    """Build the supervision policy from CLI flags.

    ``--heartbeat-interval`` follows the ``REPRO_CACHE_MAX`` sentinel
    discipline: omitted means "defer to ``REPRO_FLEET_HEARTBEAT``",
    and explicit non-positive values are rejected with a
    :class:`~repro.errors.ConfigurationError` naming the knob.
    """
    from .fleet import SupervisionPolicy

    interval = args.heartbeat_interval
    return SupervisionPolicy(
        heartbeat_interval_s=-1.0 if interval is None else interval
    )


def _cmd_fleet_serve(args) -> int:
    import asyncio

    from .errors import ConfigurationError, FleetError
    from .fleet import FleetConfig, FleetService, demo_fleet

    try:
        policy = _fleet_policy(args)
        config = FleetConfig(
            log_heartbeats=False,
            batch_window_s=(
                -1.0 if args.batch_window is None else args.batch_window
            ),
            max_batch=0 if args.max_batch is None else args.max_batch,
        )
        config.resolve_batching()  # surface env errors before starting
    except (ConfigurationError, FleetError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    session = None
    if args.telemetry:
        from pathlib import Path

        from .obs.session import TelemetrySession

        session = TelemetrySession(
            Path(args.telemetry) / "fleet.jsonl"
        )
    registry = demo_fleet(
        n_chassis=args.chassis, replicas=args.replicas
    )
    service = FleetService(
        registry,
        policy=policy,
        config=config,
        checkpoint_dir=args.checkpoints,
        session=session,
        backend=args.backend,
    )

    async def _serve() -> None:
        server = await service.serve(host=args.host, port=args.port)
        address = ", ".join(
            str(sock.getsockname()) for sock in server.sockets
        )
        print(
            f"fleet: {registry.n_chassis} chassis / "
            f"{registry.n_workers} workers serving on {address}"
        )
        try:
            async with server:
                await server.serve_forever()
        finally:
            await service.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("fleet: stopped")
    return 0


def _cmd_fleet_query(args) -> int:
    import asyncio
    import json

    from .errors import FleetError
    from .fleet.service import query_fleet

    if args.kind == "placement":
        obj = {
            "kind": "placement",
            "chassis": args.chassis,
            "job_power_w": args.power,
        }
    else:
        obj = {
            "kind": "what_if",
            "chassis": args.chassis,
            "scenarios": [
                [float(u), float(p)]
                for u, p in (
                    pair.split(":") for pair in args.scenarios
                )
            ],
        }
    try:
        answer = asyncio.run(
            query_fleet(obj, host=args.host, port=args.port)
        )
    except (OSError, FleetError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(answer, indent=2, sort_keys=True))
    return 0 if answer.get("status") in ("ok", "degraded") else 1


def _cmd_fleet_chaos(args) -> int:
    import json

    from .errors import ConfigurationError, FleetError
    from .fleet import ChaosRunConfig, run_chaos

    try:
        _fleet_policy(args)  # reject bad knob values before the run
        config = ChaosRunConfig(
            seed=args.seed,
            horizon_s=args.horizon,
            n_chassis=args.chassis,
            n_requests=args.requests,
            n_chaos_events=args.chaos_events,
            batch_window_s=(
                -1.0 if args.batch_window is None else args.batch_window
            ),
            max_batch=0 if args.max_batch is None else args.max_batch,
            backend=args.backend,
        )
        if args.heartbeat_interval is not None:
            import dataclasses

            config = dataclasses.replace(
                config,
                heartbeat_interval_s=args.heartbeat_interval,
            )
    except (ConfigurationError, FleetError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        report = run_chaos(config, out_dir=args.out)
    except (ConfigurationError, FleetError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(json.dumps(report.summary(), indent=2, sort_keys=True))
    if report.log_path is not None:
        print(f"wrote {report.log_path}")
    if not report.ok:
        print(
            f"{len(report.problems)} invariant violation(s)",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_room(args) -> int:
    import json

    from .errors import ReproError
    from .experiments.common import ExperimentConfig
    from .experiments.room_scenarios import run
    from .workloads.benchmark import BenchmarkSet

    try:
        config = ExperimentConfig(
            seed=args.seed,
            audit=args.audit,
            telemetry_dir=args.telemetry,
            backend=args.backend or "numpy",
        )
        result = run(
            config=config,
            mixes=args.mixes,
            crac_setpoints_c=args.setpoints,
            placements=args.placements,
            benchmark_set=BenchmarkSet(args.set),
            n_chassis=args.chassis,
            diurnal_step_h=args.diurnal_step,
            mode="serial" if args.serial else "batched",
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    from .experiments.common import format_table

    print("Sustainable room load vs CRAC supply temperature")
    print(
        format_table(
            ["CRAC degC"] + list(result.mixes), result.curve_rows()
        )
    )
    print()
    print(
        f"Placement comparison at {result.reference_crac_c:.0f} degC"
    )
    print(
        format_table(
            ["mix"] + list(result.placements),
            result.placement_rows(),
        )
    )
    print()
    print(f"Diurnal envelope ({result.diurnal_mix} mix)")
    print(
        format_table(
            ["hour", "supply degC", "max load"],
            result.diurnal_rows(),
        )
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(
                result.to_json_dict(),
                handle,
                indent=2,
                sort_keys=True,
            )
            handle.write("\n")
        print(f"wrote {args.out}")
    return 0


def _worker_count(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"worker count must be >= 1, got {value}"
        )
    return value


def _add_execution_flags(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--workers`` / ``--audit`` execution flags."""
    parser.add_argument(
        "--workers",
        type=_worker_count,
        default=None,
        metavar="N",
        help=(
            "run sweep points across N worker processes "
            "(results are bit-identical to serial execution)"
        ),
    )
    parser.add_argument(
        "--audit",
        action="store_true",
        help=(
            "check physical invariants (finite ordered temperatures, "
            "power envelope, non-negative work, monotone energy) "
            "periodically during every simulation"
        ),
    )
    parser.add_argument(
        "--telemetry",
        metavar="DIR",
        default=None,
        help=(
            "record structured JSONL telemetry (scheduling decisions, "
            "DVFS throttles, thermal trips, fault activations, sweep "
            "harness actions) plus per-run provenance manifests into "
            "DIR; results stay bit-identical (also: REPRO_TELEMETRY)"
        ),
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "account per-component wall-clock for every simulation "
            "(<2%% overhead) and attach the profile table to results "
            "and manifests (also: REPRO_PROFILE=1)"
        ),
    )
    parser.add_argument(
        "--stepping",
        choices=["fixed", "adaptive"],
        default=None,
        help=(
            "engine stepping mode: 'fixed' ticks every millisecond; "
            "'adaptive' skips decision-free stretches with an exact "
            "closed-form thermal advance — all scheduling decisions "
            "stay bit-identical, temperature traces carry a bounded "
            "error (also: REPRO_STEPPING)"
        ),
    )
    parser.add_argument(
        "--backend",
        choices=["numpy", "jax"],
        default=None,
        help=(
            "array backend for the thermal/DVFS kernels: 'numpy' "
            "(default, bit-identical to the historical engine) or "
            "'jax' (optional dependency; epsilon-bounded results, "
            "enables jit/vmap batched evaluation — see "
            "docs/architecture.md) (also: REPRO_BACKEND)"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Understanding the Impact of Socket "
            "Density in Density Optimized Servers' (HPCA 2019)"
        ),
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {__version__}",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_parser = sub.add_parser(
        "list", help="list reproducible tables and figures"
    )
    list_parser.set_defaults(func=_cmd_list)

    run_parser = sub.add_parser(
        "run", help="regenerate one or more artifacts"
    )
    run_parser.add_argument(
        "names", nargs="*", help="artifact names (e.g. fig14 table2)"
    )
    run_parser.add_argument(
        "--all", action="store_true", help="regenerate everything"
    )
    run_parser.add_argument(
        "--light",
        action="store_true",
        help="regenerate only the fast analytical artifacts",
    )
    _add_execution_flags(run_parser)
    run_parser.set_defaults(func=_cmd_run)

    sched_parser = sub.add_parser(
        "schedulers", help="list registered scheduling policies"
    )
    sched_parser.set_defaults(func=_cmd_schedulers)

    sweep_parser = sub.add_parser(
        "sweep", help="run a custom sweep and export summaries"
    )
    sweep_parser.add_argument(
        "--schemes",
        nargs="+",
        default=["CF", "CP"],
        help="scheduler names (see `schedulers`)",
    )
    sweep_parser.add_argument(
        "--sets",
        nargs="+",
        default=["Computation"],
        help="benchmark sets: Computation, GP, Storage",
    )
    sweep_parser.add_argument(
        "--loads",
        nargs="+",
        type=float,
        default=[0.3, 0.7],
        help="load levels in (0, 1]",
    )
    sweep_parser.add_argument(
        "--rows", type=int, default=3, help="SUT rows (15 = full)"
    )
    sweep_parser.add_argument(
        "--sim-time",
        type=float,
        default=16.0,
        help="scaled horizon, seconds",
    )
    sweep_parser.add_argument("--seed", type=int, default=0)
    sweep_parser.add_argument(
        "--faults",
        metavar="SPEC",
        help=(
            "inject a deterministic fault schedule into every point; "
            "clauses separated by ';', e.g. "
            "'fan:row=0,scale=0.5,start=2;kill:socket=3,start=4' or "
            "'random:seed=7,n=3' (see repro.faults.parse_fault_spec)"
        ),
    )
    sweep_parser.add_argument(
        "--resume",
        metavar="DIR",
        help=(
            "checkpoint directory: every finished point is persisted "
            "there immediately, and re-running with the same "
            "configuration resumes bit-identically from whatever "
            "completed"
        ),
    )
    sweep_parser.add_argument("--csv", help="write summaries to CSV")
    sweep_parser.add_argument("--json", help="write summaries to JSON")
    _add_execution_flags(sweep_parser)
    sweep_parser.set_defaults(func=_cmd_sweep)

    fleet_parser = sub.add_parser(
        "fleet",
        help="resilient multi-chassis fleet coordinator",
    )
    fleet_sub = fleet_parser.add_subparsers(
        dest="fleet_command", required=True
    )

    def _add_fleet_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--heartbeat-interval",
            type=float,
            default=None,
            metavar="S",
            help=(
                "worker heartbeat cadence in seconds; must be "
                "positive (also: REPRO_FLEET_HEARTBEAT)"
            ),
        )
        p.add_argument(
            "--chassis", type=int, default=3, help="fleet width"
        )
        p.add_argument(
            "--batch-window",
            type=float,
            default=None,
            metavar="S",
            help=(
                "micro-batching coalescing window in seconds; 0 "
                "batches only same-tick arrivals; omitted defers to "
                "REPRO_FLEET_BATCH (default: batching off)"
            ),
        )
        p.add_argument(
            "--max-batch",
            type=int,
            default=None,
            metavar="N",
            help=(
                "most queries per batch message (default 8 when a "
                "window is set; also: REPRO_FLEET_BATCH=window:N)"
            ),
        )
        p.add_argument(
            "--backend",
            default=None,
            help=(
                "array backend for the workers' what-if fleet-tensor "
                "path (e.g. numpy, jax; also: REPRO_BACKEND)"
            ),
        )

    serve_parser = fleet_sub.add_parser(
        "serve", help="run the fleet service (JSON lines over TCP)"
    )
    _add_fleet_flags(serve_parser)
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=7781)
    serve_parser.add_argument(
        "--replicas",
        type=int,
        default=1,
        help="extra workers per chassis (retry targets)",
    )
    serve_parser.add_argument(
        "--checkpoints",
        metavar="DIR",
        help="persist worker snapshots for restart recovery",
    )
    serve_parser.add_argument(
        "--telemetry",
        metavar="DIR",
        help="mirror fleet supervision events to DIR/fleet.jsonl",
    )
    serve_parser.set_defaults(func=_cmd_fleet_serve)

    query_parser = fleet_sub.add_parser(
        "query", help="send one query to a running fleet service"
    )
    query_parser.add_argument(
        "kind", choices=["placement", "what_if"]
    )
    query_parser.add_argument("--host", default="127.0.0.1")
    query_parser.add_argument("--port", type=int, default=7781)
    query_parser.add_argument(
        "--chassis", default="c0", help="target chassis id"
    )
    query_parser.add_argument(
        "--power",
        type=float,
        default=10.0,
        help="job dynamic power for placement queries, W",
    )
    query_parser.add_argument(
        "--scenarios",
        nargs="+",
        default=["0.5:10"],
        metavar="UTIL:POWER",
        help="what-if scenarios as utilization:dyn_power pairs",
    )
    query_parser.set_defaults(func=_cmd_fleet_query)

    chaos_parser = fleet_sub.add_parser(
        "chaos",
        help=(
            "drive the coordinator through a seeded chaos scenario "
            "in virtual time and audit the invariants"
        ),
    )
    _add_fleet_flags(chaos_parser)
    chaos_parser.add_argument("--seed", type=int, default=0)
    chaos_parser.add_argument(
        "--horizon", type=float, default=30.0, help="virtual seconds"
    )
    chaos_parser.add_argument(
        "--requests", type=int, default=40, help="workload size"
    )
    chaos_parser.add_argument(
        "--chaos-events", type=int, default=6, help="failures injected"
    )
    chaos_parser.add_argument(
        "--out",
        metavar="DIR",
        help="write fleet.jsonl and worker checkpoints under DIR",
    )
    chaos_parser.set_defaults(func=_cmd_fleet_chaos)

    room_parser = sub.add_parser(
        "room",
        help=(
            "room-scale sustainable load: CRAC setpoints, heat "
            "recirculation and thermal-aware placement"
        ),
    )
    room_parser.add_argument(
        "--mixes",
        nargs="+",
        default=["coupled", "uncoupled", "mixed"],
        help="chassis mixes: coupled, uncoupled, mixed",
    )
    room_parser.add_argument(
        "--setpoints",
        nargs="+",
        type=float,
        default=[14.0, 18.0, 22.0, 26.0, 30.0],
        metavar="DEGC",
        help="CRAC supply temperatures for the derating curves",
    )
    room_parser.add_argument(
        "--placements",
        nargs="+",
        default=["paper", "coolest", "minhr"],
        help="placement policies: paper, coolest, minhr",
    )
    room_parser.add_argument(
        "--set",
        default="Computation",
        help="benchmark set: Computation, GP, Storage",
    )
    room_parser.add_argument(
        "--chassis", type=int, default=3, help="chassis per mix"
    )
    room_parser.add_argument(
        "--diurnal-step",
        type=int,
        default=2,
        metavar="H",
        help="hour stride of the diurnal free-cooling trace",
    )
    room_parser.add_argument("--seed", type=int, default=0)
    room_parser.add_argument(
        "--serial",
        action="store_true",
        help=(
            "solve chassis one at a time instead of the batched "
            "fleet-tensor path (bit-identical on numpy; for "
            "differential debugging)"
        ),
    )
    room_parser.add_argument(
        "--audit",
        action="store_true",
        help=(
            "recheck every converged room equilibrium against the "
            "room invariant envelope (fixed point, inlet floors, "
            "temperature ordering, exhaust accounting)"
        ),
    )
    room_parser.add_argument(
        "--telemetry",
        metavar="DIR",
        help="mirror room solver events to DIR/room.jsonl",
    )
    room_parser.add_argument(
        "--backend",
        choices=["numpy", "jax"],
        default=None,
        help="array backend for the chassis kernels",
    )
    room_parser.add_argument(
        "--out",
        metavar="JSON",
        help="write the sustainable-load results as JSON",
    )
    room_parser.set_defaults(func=_cmd_room)

    report_parser = sub.add_parser(
        "report", help="write a full reproduction report (markdown)"
    )
    report_parser.add_argument(
        "--out", default="REPORT.md", help="output path"
    )
    report_parser.add_argument(
        "--heavy",
        action="store_true",
        help="also run the simulation-backed artifacts (minutes)",
    )
    report_parser.set_defaults(func=_cmd_report)
    return parser


def main(argv: "List[str] | None" = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

"""repro — reproduction of "Understanding the Impact of Socket Density in
Density Optimized Servers" (Arora et al., HPCA 2019).

The library models intra-server thermals of density optimized servers
(shared cooling, uni-directional airflow, inter-socket thermal coupling)
and evaluates temperature-aware job scheduling policies on them,
including the paper's proposed CouplingPredictor (CP).

Quickstart::

    from repro import (
        moonshot_sut, scaled, run_once, get_scheduler, BenchmarkSet,
    )

    topology = moonshot_sut(n_rows=5)
    params = scaled()
    result = run_once(
        topology, params, get_scheduler("CP"),
        BenchmarkSet.COMPUTATION, load=0.7,
    )
    print(result.mean_runtime_expansion)

Packages:

- :mod:`repro.thermal` — heat sinks, chip models, airflow, coupling.
- :mod:`repro.server` — processors, sockets, topologies, Table I.
- :mod:`repro.workloads` — synthetic PCMark suite, power/perf models,
  arrivals, traces.
- :mod:`repro.sim` — the vectorised simulation engine.
- :mod:`repro.core` — the scheduling policies (the paper's
  contribution).
- :mod:`repro.metrics` — performance / energy / zone metrics.
- :mod:`repro.analysis` — the Figure 1 server survey.
- :mod:`repro.experiments` — one module per paper table and figure.
"""

from ._version import __version__
from .errors import (
    ReproError,
    ConfigurationError,
    TopologyError,
    ThermalModelError,
    WorkloadError,
    SchedulingError,
    SimulationError,
)
from .config import SimulationParameters, paper_faithful, scaled, smoke
from .server import (
    moonshot_sut,
    two_socket_system,
    ServerTopology,
    OPTERON_X2150,
    TABLE_I_SYSTEMS,
)
from .thermal import (
    HeatSink,
    FIN_18,
    FIN_30,
    SimplifiedChipModel,
    DetailedChipModel,
    peak_temperature,
)
from .workloads import (
    BenchmarkSet,
    PCMARK_APPS,
    ArrivalProcess,
    PowerModel,
    PerfModel,
    Job,
)
from .sim import Simulation, SimulationResult, run_once, run_sweep
from .core import (
    Scheduler,
    get_scheduler,
    register_scheduler,
    all_scheduler_names,
    CouplingPredictor,
    MigrationPolicy,
)
from .metrics import (
    relative_performance,
    relative_ed2,
    zone_report,
)

__all__ = [
    "__version__",
    "ReproError",
    "ConfigurationError",
    "TopologyError",
    "ThermalModelError",
    "WorkloadError",
    "SchedulingError",
    "SimulationError",
    "SimulationParameters",
    "paper_faithful",
    "scaled",
    "smoke",
    "moonshot_sut",
    "two_socket_system",
    "ServerTopology",
    "OPTERON_X2150",
    "TABLE_I_SYSTEMS",
    "HeatSink",
    "FIN_18",
    "FIN_30",
    "SimplifiedChipModel",
    "DetailedChipModel",
    "peak_temperature",
    "BenchmarkSet",
    "PCMARK_APPS",
    "ArrivalProcess",
    "PowerModel",
    "PerfModel",
    "Job",
    "Simulation",
    "SimulationResult",
    "run_once",
    "run_sweep",
    "Scheduler",
    "get_scheduler",
    "register_scheduler",
    "all_scheduler_names",
    "CouplingPredictor",
    "MigrationPolicy",
    "relative_performance",
    "relative_ed2",
    "zone_report",
]

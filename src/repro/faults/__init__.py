"""Deterministic fault injection for degraded-chassis studies.

Public surface:

- :mod:`repro.faults.events` — the fault event dataclasses;
- :class:`~repro.faults.schedule.FaultSchedule` /
  :class:`~repro.faults.schedule.FaultResponse` — a seeded,
  fingerprinted scenario plus the graceful-degradation policy;
- :class:`~repro.faults.injector.FaultInjector` /
  :class:`~repro.faults.injector.FaultState` — the pipeline component
  replaying a schedule and the runtime flags it shares with the engine;
- :func:`~repro.faults.spec.parse_fault_spec` — the CLI ``--faults``
  mini-language.

Pass a schedule to :class:`repro.sim.engine.Simulation` (or the
``fault_schedule`` argument of :func:`repro.sim.runner.run_once` /
:func:`~repro.sim.runner.run_sweep`) to inject it; runs without one are
bit-identical to the fault-free engine.
"""

from .events import (
    DVFSStuckFault,
    FanLaneFault,
    FaultEvent,
    PowerCapFault,
    SensorFault,
    SensorFaultMode,
    SocketKillFault,
)
from .injector import FaultInjector, FaultState
from .schedule import FaultResponse, FaultSchedule
from .spec import parse_fault_spec

__all__ = [
    "DVFSStuckFault",
    "FanLaneFault",
    "FaultEvent",
    "FaultInjector",
    "FaultResponse",
    "FaultSchedule",
    "FaultState",
    "PowerCapFault",
    "SensorFault",
    "SensorFaultMode",
    "SocketKillFault",
    "parse_fault_spec",
]

"""Fault event types injected into a simulation run.

Each event is a small frozen dataclass describing one hardware fault:
what breaks, when it starts and (optionally) when it clears.  Events
carry *no* runtime state — the :class:`~repro.faults.injector.
FaultInjector` compiles a schedule of events into per-step transitions
at run start, so the same schedule replays bit-identically on every
run.

The modelled fault classes mirror the failure modes that matter for a
density optimized chassis (one shared air stream, uni-directional
coupling):

- :class:`FanLaneFault` — a fan lane degrades or fails, shrinking the
  airflow over one row (or one lane of a row).  Entry-temperature
  rises scale as ``1/airflow``, so an upwind socket's heat now hits
  every downwind socket harder — the cascade the paper's density
  argument is about.
- :class:`SensorFault` — one socket's temperature telemetry goes bad
  (constant bias, stuck at a value, or dropout with the last good
  reading held).  Scheduling policies then decide on *observed*
  temperatures while the physics keeps running on true ones.
- :class:`DVFSStuckFault` — a socket's DVFS ladder wedges at one
  state; the power manager's selection is overridden while the fault
  is active (the thermal-trip response still applies — a hardware
  trip bypasses the wedged ladder).
- :class:`SocketKillFault` — fail-stop socket death: the running job
  is evicted back into the central queue (losing its progress), the
  socket draws zero power and accepts no placements until the fault
  clears.
- :class:`PowerCapFault` — a transient server-wide power-cap event
  (PSU brownout, rack-level cap), enforced the way production RAPL
  caps settle: as a DVFS frequency ceiling over every socket.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigurationError


@dataclass(frozen=True)
class FaultEvent:
    """Base fault event: an activation window on the simulation clock.

    Attributes:
        start_s: Activation time, seconds since simulation start.
        end_s: Deactivation time, seconds; ``None`` means the fault
            never clears (permanent for the rest of the run).
    """

    start_s: float = 0.0
    end_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ConfigurationError(
                f"fault start must be non-negative, got {self.start_s}"
            )
        if self.end_s is not None and self.end_s <= self.start_s:
            raise ConfigurationError(
                f"fault end {self.end_s} must be after start "
                f"{self.start_s}"
            )


@dataclass(frozen=True)
class FanLaneFault(FaultEvent):
    """Degraded or failed fan lane over one row (optionally one lane).

    Attributes:
        row: Affected cartridge row, 0-based.
        lane: Affected lane within the row, or ``None`` for every lane
            of the row (a shared row fan).
        scale: Residual airflow fraction in (0, 1]; ``1.0`` is healthy,
            ``0.5`` a half-degraded lane, small values a failed fan
            whose sockets only see bypass air from neighbours.  Zero is
            rejected — a literally sealed duct has no steady state in
            the first-law coupling model.
    """

    row: int = 0
    lane: Optional[int] = None
    scale: float = 0.5

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.row < 0:
            raise ConfigurationError("fan fault row must be >= 0")
        if self.lane is not None and self.lane < 0:
            raise ConfigurationError("fan fault lane must be >= 0")
        if not 0.0 < self.scale <= 1.0:
            raise ConfigurationError(
                f"fan fault scale must be in (0, 1], got {self.scale}"
            )


class SensorFaultMode(enum.Enum):
    """How a socket's temperature telemetry misbehaves."""

    #: Every reading is offset by a constant bias.
    BIAS = "bias"
    #: Every reading is replaced by one constant value.
    STUCK = "stuck"
    #: Readings freeze at the last good value before the fault.
    DROPOUT = "dropout"


@dataclass(frozen=True)
class SensorFault(FaultEvent):
    """Bad temperature telemetry on one socket.

    The fault sits between the physics and every *observer* of the
    socket's temperature channels (chip, sink, entry air, smoothed
    history): scheduling and migration policies see the corrupted
    readings, while the thermal model and the DVFS hardware loop keep
    operating on true temperatures (on-die DVFS uses its own analog
    sensor path).

    Attributes:
        socket_id: Affected socket.
        mode: Corruption mode (bias / stuck / dropout).
        bias_c: Additive offset for ``BIAS`` mode, degC (may be
            negative — a stuck-cold bias is the dangerous direction).
        stuck_c: Constant reading for ``STUCK`` mode, degC.
    """

    socket_id: int = 0
    mode: SensorFaultMode = SensorFaultMode.BIAS
    bias_c: float = 0.0
    stuck_c: Optional[float] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.socket_id < 0:
            raise ConfigurationError("sensor fault socket must be >= 0")
        if self.mode is SensorFaultMode.STUCK and self.stuck_c is None:
            raise ConfigurationError(
                "a stuck sensor fault needs stuck_c"
            )
        if self.mode is SensorFaultMode.BIAS and self.bias_c == 0.0:
            raise ConfigurationError(
                "a bias sensor fault needs a non-zero bias_c"
            )


@dataclass(frozen=True)
class DVFSStuckFault(FaultEvent):
    """A socket's DVFS ladder wedged at one state.

    While active, the power manager's per-step selection for this
    socket is overridden with ``stuck_mhz`` whenever the socket is
    busy.  The thermal-trip emergency response still applies: a
    hardware trip forces the floor state through a separate path, so a
    ladder stuck at boost cannot cook the chip indefinitely.

    Attributes:
        socket_id: Affected socket.
        stuck_mhz: The wedged ladder state, MHz (must be a real state
            of the processor's ladder — validated when the schedule is
            bound to a topology).
    """

    socket_id: int = 0
    stuck_mhz: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.socket_id < 0:
            raise ConfigurationError("DVFS fault socket must be >= 0")
        if self.stuck_mhz <= 0:
            raise ConfigurationError(
                "DVFS stuck frequency must be positive"
            )


@dataclass(frozen=True)
class SocketKillFault(FaultEvent):
    """Fail-stop death of one socket.

    On activation the running job (if any) is evicted back into the
    central queue and restarts from scratch when re-placed (fail-stop
    semantics: in-flight state is lost; the response-time metric
    carries the full penalty).  While dead the socket draws exactly
    zero power, is invisible to placement and migration, and its
    thermal nodes relax toward the local air temperature.  If
    ``end_s`` is set the socket returns to service cold.

    Attributes:
        socket_id: Affected socket.
    """

    socket_id: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.socket_id < 0:
            raise ConfigurationError("kill fault socket must be >= 0")


@dataclass(frozen=True)
class PowerCapFault(FaultEvent):
    """Transient server-wide power cap.

    Enforced as a DVFS ceiling: while active, no socket is granted a
    state above ``cap_mhz`` (the steady-state behaviour of a RAPL-style
    cap).  Must name a real ladder state — validated when the schedule
    is bound to a topology.

    Attributes:
        cap_mhz: Highest grantable frequency during the event, MHz.
    """

    cap_mhz: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.cap_mhz <= 0:
            raise ConfigurationError("power cap must be positive")

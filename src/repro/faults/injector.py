"""Runtime fault state and the pipeline component that drives it.

The :class:`FaultInjector` is a :class:`~repro.sim.pipeline.
StepComponent` spliced between ``ArrivalAdmitter`` and ``Placer`` (see
``docs/architecture.md`` for why that slot): at run start it compiles
its :class:`~repro.faults.schedule.FaultSchedule` into per-step
transitions and swaps the context's scheduler view for a
:class:`~repro.sim.view.FaultAwareSchedulerView`; each step it applies
the transitions that fall due *before* any placement decision, so a
socket killed at time t never receives a job at time t.

All runtime flags live in one :class:`FaultState` object shared (via
``ctx.fault_state``) with the engine phases that must react:

- ``Placer`` filters dead sockets out of the idle set;
- ``PowerManager`` runs the thermal-trip machine on **true** chip
  temperatures, overrides wedged DVFS ladders, applies transient
  power caps, and zeroes power on dead sockets;
- ``ThermalUpdater`` divides each socket's entry-air rise by its
  residual airflow factor;
- the scheduler view overlays sensor corruption onto every observed
  temperature channel;
- the :class:`~repro.sim.invariants.InvariantAuditor` asserts the
  fault-aware envelopes.

Bit-identity contract: every hook in the engine is gated on
``ctx.fault_state is not None`` *and* on the specific fault class
being active, so a run with no schedule — or with an empty one — is
bit-identical to the pre-fault engine.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..sim.pipeline import EngineContext, StepComponent
from ..sim.view import FaultAwareSchedulerView, _readonly
from .events import (
    DVFSStuckFault,
    FanLaneFault,
    FaultEvent,
    PowerCapFault,
    SensorFault,
    SensorFaultMode,
    SocketKillFault,
)
from .schedule import FaultSchedule

#: Temperature channels subject to sensor corruption (the socket's
#: telemetry block reports all of them through one faulty path).
OBSERVED_CHANNELS = ("chip_c", "sink_c", "ambient_c", "history_c")


class FaultState:
    """Mutable per-run fault flags consumed across the pipeline.

    One instance is created per run by the :class:`FaultInjector` and
    exposed as ``ctx.fault_state``.  All arrays are per-socket.

    Attributes:
        alive: ``False`` while a socket is killed.
        airflow_factor: Residual airflow per socket in (0, 1]; entry
            rises are divided by it.
        airflow_degraded: Fast-path flag, ``True`` iff any factor < 1.
        tripped: Thermal-trip latch per socket.
        trip_step: Step at which the current trip began (-1 untripped).
        response: The schedule's :class:`~repro.faults.schedule.
            FaultResponse`.
        n_trips: Trips latched over the run.
        n_evictions: Jobs evicted off killed sockets over the run.
    """

    def __init__(self, topology, params, response) -> None:
        n = topology.n_sockets
        self.topology = topology
        self.response = response
        self._trip_c = (
            params.temperature_limit_c + response.trip_margin_c
        )
        self.alive = np.ones(n, dtype=bool)
        self.airflow_factor = np.ones(n)
        self.airflow_degraded = False
        self.sensor_bias = np.zeros(n)
        self.sensor_stuck = np.full(n, np.nan)
        self.sensor_dropout = np.zeros(n, dtype=bool)
        self._held = {
            channel: np.full(n, np.nan) for channel in OBSERVED_CHANNELS
        }
        self.sensors_faulty = False
        self.dvfs_stuck_mhz = np.full(n, np.nan)
        self.power_cap_mhz = float("inf")
        self._active_caps: List[float] = []
        self._active_fans: List[FanLaneFault] = []
        self.tripped = np.zeros(n, dtype=bool)
        self.trip_step = np.full(n, -1, dtype=np.int64)
        self.n_trips = 0
        self.n_evictions = 0

    @property
    def trip_c(self) -> float:
        """The emergency-throttle trip temperature, degC."""
        return self._trip_c

    @property
    def any_dead(self) -> bool:
        """Whether at least one socket is currently killed."""
        return not self.alive.all()

    # -- observed telemetry ---------------------------------------------

    def observe(
        self, channel: str, true_values: np.ndarray
    ) -> np.ndarray:
        """The values policies see for one temperature channel.

        With no active sensor fault this is a zero-copy read-only view
        of the true array (preserving bit-identity and allocation
        behaviour); otherwise a corrupted copy with the per-socket
        bias / stuck / dropout overlays applied.
        """
        if not self.sensors_faulty:
            return _readonly(true_values)
        observed = true_values + self.sensor_bias
        stuck = ~np.isnan(self.sensor_stuck)
        observed[stuck] = self.sensor_stuck[stuck]
        dropout = self.sensor_dropout
        observed[dropout] = self._held[channel][dropout]
        observed.flags.writeable = False
        return observed

    # -- power-manager hooks --------------------------------------------

    def update_trips(
        self, chip_c: np.ndarray, step: int, dt: float
    ) -> None:
        """Advance the thermal-trip state machine one engine step.

        Runs on the *true* chip temperatures (a hardware trip uses the
        on-die analog path, so sensor faults cannot mask it).  Dead
        sockets draw no power and never trip.
        """
        response = self.response
        newly = (chip_c > self._trip_c) & ~self.tripped & self.alive
        if newly.any():
            self.tripped |= newly
            self.trip_step[newly] = step
            self.n_trips += int(newly.sum())
        if self.tripped.any():
            held = (
                (step - self.trip_step) * dt >= response.trip_hold_s
            )
            cool = chip_c < self._trip_c - response.trip_hysteresis_c
            clear = self.tripped & held & cool
            if clear.any():
                self.tripped[clear] = False
                self.trip_step[clear] = -1

    def override_frequencies(
        self, freq_mhz: np.ndarray, min_mhz: float
    ) -> np.ndarray:
        """Apply DVFS faults and responses to the manager's selection.

        Order matters and models the hardware: a wedged ladder replaces
        the selection, a power cap ceilings whatever the ladder
        produced, and a thermal trip forces the floor past both (the
        trip path is downstream of the ladder *and* the cap governor).
        Returns ``freq_mhz`` unchanged (same object) when no override
        is active.
        """
        stuck = ~np.isnan(self.dvfs_stuck_mhz)
        if stuck.any():
            freq_mhz = np.where(stuck, self.dvfs_stuck_mhz, freq_mhz)
        if self.power_cap_mhz != float("inf"):
            freq_mhz = np.minimum(freq_mhz, self.power_cap_mhz)
        if self.tripped.any():
            freq_mhz = np.where(self.tripped, min_mhz, freq_mhz)
        return freq_mhz

    def zero_dead_power(self, power_w: np.ndarray) -> None:
        """Force exactly zero draw on killed sockets (in place)."""
        if self.any_dead:
            power_w[~self.alive] = 0.0

    # -- summary --------------------------------------------------------

    def summary(self, schedule: FaultSchedule) -> Dict[str, object]:
        """Plain-data digest of the run's fault activity."""
        return {
            "schedule_fingerprint": schedule.fingerprint(),
            "n_events": len(schedule),
            "n_trips": self.n_trips,
            "n_evictions": self.n_evictions,
            "n_dead_at_end": int((~self.alive).sum()),
            "tripped_at_end": int(self.tripped.sum()),
        }


class FaultInjector(StepComponent):
    """Pipeline component replaying a :class:`FaultSchedule`.

    Must sit between ``ArrivalAdmitter`` and ``Placer``: its
    ``on_run_start`` swaps ``ctx.view`` for the fault-aware view
    *before* the placer hands it to the scheduler's ``reset``, and its
    ``on_step`` applies fault transitions before any placement, so the
    placer never sees a stale alive set.
    """

    def __init__(self, schedule: FaultSchedule) -> None:
        self.schedule = schedule
        self.fault_state: Optional[FaultState] = None
        self._transitions: Dict[
            int, List[Tuple[bool, FaultEvent]]
        ] = {}
        self._transition_steps: List[int] = []

    def on_run_start(self, ctx: EngineContext) -> None:
        self.schedule.validate(ctx.topology)
        state = FaultState(
            ctx.topology, ctx.params, self.schedule.response
        )
        self.fault_state = state
        ctx.fault_state = state
        ctx.view = FaultAwareSchedulerView(ctx.state, state)
        transitions: Dict[int, List[Tuple[bool, FaultEvent]]] = {}
        for event in self.schedule.events:
            start = self._step_of(event.start_s, ctx.dt)
            if start < ctx.n_steps:
                transitions.setdefault(start, []).append((True, event))
            if event.end_s is not None:
                end = self._step_of(event.end_s, ctx.dt)
                if end < ctx.n_steps:
                    transitions.setdefault(end, []).append(
                        (False, event)
                    )
        self._transitions = transitions
        self._transition_steps = sorted(transitions)

    def next_event_step(self, ctx: EngineContext) -> Optional[int]:
        # Horizon query for the multi-rate driver: the first scheduled
        # fault transition at or after the current step.  Windows never
        # span a transition, so every activation/deactivation is
        # applied by a plain fixed step exactly as in fixed mode.
        steps = self._transition_steps
        index = bisect_left(steps, ctx.step)
        return steps[index] if index < len(steps) else None

    def is_quiescent(self, ctx: EngineContext) -> bool:
        # Transition timing is covered by next_event_step; the trip
        # state machine's per-step work is vetoed by the PowerManager
        # while any trip is latched.
        return True

    @staticmethod
    def _step_of(time_s: float, dt: float) -> int:
        """First engine step whose time is >= ``time_s``."""
        return int(np.ceil(time_s / dt - 1e-9))

    def on_step(self, ctx: EngineContext) -> None:
        due = self._transitions.get(ctx.step)
        if not due:
            return
        telemetry = ctx.telemetry
        for activating, event in due:
            self._apply(ctx, event, activating)
            if telemetry is not None:
                telemetry.emit(
                    "fault_activation",
                    step=ctx.step,
                    t=ctx.time_s,
                    fault=type(event).__name__,
                    activating=activating,
                )

    def on_run_end(self, ctx: EngineContext) -> None:
        ctx.result.fault_summary = self.fault_state.summary(
            self.schedule
        )

    # -- transition application -----------------------------------------

    def _apply(
        self, ctx: EngineContext, event: FaultEvent, activating: bool
    ) -> None:
        state = self.fault_state
        if isinstance(event, FanLaneFault):
            if activating:
                state._active_fans.append(event)
            else:
                state._active_fans.remove(event)
            self._recompute_airflow(ctx)
        elif isinstance(event, SensorFault):
            self._apply_sensor(ctx, event, activating)
        elif isinstance(event, DVFSStuckFault):
            state.dvfs_stuck_mhz[event.socket_id] = (
                event.stuck_mhz if activating else np.nan
            )
        elif isinstance(event, PowerCapFault):
            if activating:
                state._active_caps.append(event.cap_mhz)
            else:
                state._active_caps.remove(event.cap_mhz)
            state.power_cap_mhz = (
                min(state._active_caps)
                if state._active_caps
                else float("inf")
            )
        elif isinstance(event, SocketKillFault):
            self._apply_kill(ctx, event, activating)

    def _recompute_airflow(self, ctx: EngineContext) -> None:
        state = self.fault_state
        topology = ctx.topology
        factor = state.airflow_factor
        factor.fill(1.0)
        for fault in state._active_fans:
            mask = topology.row_array == fault.row
            if fault.lane is not None:
                mask = mask & (topology.lane_array == fault.lane)
            factor[mask] *= fault.scale
        state.airflow_degraded = bool((factor != 1.0).any())

    def _apply_sensor(
        self, ctx: EngineContext, event: SensorFault, activating: bool
    ) -> None:
        state = self.fault_state
        socket = event.socket_id
        if event.mode is SensorFaultMode.BIAS:
            state.sensor_bias[socket] += (
                event.bias_c if activating else -event.bias_c
            )
        elif event.mode is SensorFaultMode.STUCK:
            state.sensor_stuck[socket] = (
                event.stuck_c if activating else np.nan
            )
        else:  # DROPOUT: hold the last good reading of every channel
            state.sensor_dropout[socket] = activating
            if activating:
                sim = ctx.state
                true = {
                    "chip_c": sim.thermal.chip_c,
                    "sink_c": sim.thermal.sink_c,
                    "ambient_c": sim.ambient_c,
                    "history_c": sim.history_c,
                }
                for channel, values in true.items():
                    state._held[channel][socket] = values[socket]
        state.sensors_faulty = bool(
            state.sensor_bias.any()
            or (~np.isnan(state.sensor_stuck)).any()
            or state.sensor_dropout.any()
        )

    def _apply_kill(
        self, ctx: EngineContext, event: SocketKillFault, activating: bool
    ) -> None:
        state = self.fault_state
        socket = event.socket_id
        if activating:
            state.alive[socket] = False
            # A dead socket cannot stay latched in a trip.
            if state.tripped[socket]:
                state.tripped[socket] = False
                state.trip_step[socket] = -1
            if ctx.state.busy[socket]:
                job = ctx.state.release(socket)
                job.socket_id = None
                # Fail-stop: progress is lost; the job restarts from
                # scratch when re-placed.  It rejoins the tail of the
                # central queue (behind same-step arrivals).
                ctx.queue.append(job)
                state.n_evictions += 1
                if ctx.telemetry is not None:
                    ctx.telemetry.emit(
                        "eviction",
                        step=ctx.step,
                        t=ctx.time_s,
                        socket=int(socket),
                        job_id=int(job.job_id),
                    )
        else:
            state.alive[socket] = True

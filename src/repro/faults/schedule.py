"""Deterministic fault schedules and the degradation-response policy.

A :class:`FaultSchedule` is an immutable bag of
:class:`~repro.faults.events.FaultEvent` objects plus a
:class:`FaultResponse` describing how the engine reacts (thermal-trip
throttling thresholds and the recovery envelopes the auditor asserts).
Schedules carry no runtime state, pickle cleanly across worker
processes, and expose a content :meth:`~FaultSchedule.fingerprint` so
caches, checkpoints and determinism tests can key on the *exact* fault
scenario.

Determinism contract: a schedule is data, never a generator — the
:meth:`FaultSchedule.random` constructor samples its events once from a
seeded :class:`numpy.random.Generator` and the resulting schedule
replays bit-identically however often it is run.  An *empty* schedule
is also legal and the engine guarantees a run under it is bit-identical
to a run with no fault machinery at all (the fingerprint-oracle tests
pin this).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from ..errors import ConfigurationError
from ..server.topology import ServerTopology
from .events import (
    DVFSStuckFault,
    FanLaneFault,
    FaultEvent,
    PowerCapFault,
    SensorFault,
    SensorFaultMode,
    SocketKillFault,
)


@dataclass(frozen=True)
class FaultResponse:
    """How the engine degrades gracefully when faults bite.

    The response has two halves.  The *trip machine* is the emergency
    throttle in the power manager: when a chip's **true** temperature
    exceeds ``temperature_limit_c + trip_margin_c`` (a hardware trip
    uses the on-die analog sensor, so sensor faults cannot blind it),
    the socket is forced to the ladder floor until it has both cooled
    ``trip_hysteresis_c`` below the trip point and spent at least
    ``trip_hold_s`` throttled.  The *envelopes* are what the
    fault-aware auditor asserts about that response: the floor state
    must be in force within ``trip_response_steps`` engine steps of the
    trip, and the chip must be back under the trip temperature after
    ``trip_recovery_taus`` heat-sink time constants (the sink mass,
    not the chip, sets the recovery timescale).

    Attributes:
        trip_margin_c: Trip threshold above the DVFS temperature
            limit, degC.  May be negative — tests use a margin below
            normal operating temperatures to force trips on demand.
        trip_hysteresis_c: Cooling below the trip point required to
            untrip, degC.
        trip_hold_s: Minimum time throttled before untripping, s.
        trip_response_steps: Engine steps the auditor allows between a
            trip and the floor state being observed.
        trip_recovery_taus: Heat-sink time constants the auditor
            allows before the chip must sit below the trip point.
    """

    trip_margin_c: float = 5.0
    trip_hysteresis_c: float = 3.0
    trip_hold_s: float = 0.25
    trip_response_steps: int = 1
    trip_recovery_taus: float = 2.0

    def __post_init__(self) -> None:
        if self.trip_hysteresis_c < 0:
            raise ConfigurationError("trip hysteresis must be >= 0")
        if self.trip_hold_s < 0:
            raise ConfigurationError("trip hold time must be >= 0")
        if self.trip_response_steps < 0:
            raise ConfigurationError("trip response steps must be >= 0")
        if self.trip_recovery_taus <= 0:
            raise ConfigurationError("trip recovery taus must be > 0")


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable, reproducible set of fault events for one run.

    Attributes:
        events: The fault events, in the order they were declared
            (ties on the same activation step are applied in this
            order — part of the determinism contract).
        response: The graceful-degradation policy for the run.
    """

    events: Tuple[FaultEvent, ...] = ()
    response: FaultResponse = field(default_factory=FaultResponse)

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        for event in self.events:
            if not isinstance(event, FaultEvent):
                raise ConfigurationError(
                    f"fault schedule entries must be FaultEvent "
                    f"instances, got {type(event).__name__}"
                )

    def __len__(self) -> int:
        return len(self.events)

    @property
    def empty(self) -> bool:
        """Whether the schedule contains no events."""
        return not self.events

    def token(self) -> bytes:
        """Canonical byte serialisation of the full schedule.

        Dataclass ``repr`` is deterministic for these frozen event
        types, so the token (and everything keyed on it — the sweep
        cache, checkpoints, fingerprints) is stable across processes
        and sessions.
        """
        parts = [repr(self.response).encode()]
        parts.extend(repr(event).encode() for event in self.events)
        return b"\x1f".join(parts)

    def fingerprint(self) -> str:
        """SHA-256 content hash of the schedule."""
        return hashlib.sha256(self.token()).hexdigest()

    def transition_times(self) -> Tuple[float, ...]:
        """All activation and deactivation times, sorted ascending.

        The schedule-level horizon query behind the multi-rate
        driver's next-event scan: every entry is a time at which the
        engine's fault state may change, so no quiescent window may
        span one.  Duplicates are collapsed.
        """
        times = set()
        for event in self.events:
            times.add(float(event.start_s))
            if event.end_s is not None:
                times.add(float(event.end_s))
        return tuple(sorted(times))

    def next_transition_s(self, time_s: float) -> "float | None":
        """The first transition at or after ``time_s``, or ``None``.

        Args:
            time_s: Query time, seconds.
        """
        for transition in self.transition_times():
            if transition >= time_s:
                return transition
        return None

    def validate(self, topology: ServerTopology) -> None:
        """Check every event is realisable on ``topology``.

        Raises:
            ConfigurationError: for out-of-range sockets/rows/lanes or
                DVFS targets that are not ladder states.
        """
        n = topology.n_sockets
        states = set(topology.processor.ladder.states_mhz)
        for event in self.events:
            socket_id = getattr(event, "socket_id", None)
            if socket_id is not None and socket_id >= n:
                raise ConfigurationError(
                    f"{type(event).__name__} targets socket "
                    f"{socket_id}, topology has {n}"
                )
            if isinstance(event, FanLaneFault):
                if event.row >= topology.n_rows:
                    raise ConfigurationError(
                        f"fan fault row {event.row} out of range "
                        f"0..{topology.n_rows - 1}"
                    )
                if (
                    event.lane is not None
                    and event.lane >= topology.lanes_per_row
                ):
                    raise ConfigurationError(
                        f"fan fault lane {event.lane} out of range "
                        f"0..{topology.lanes_per_row - 1}"
                    )
            if isinstance(event, DVFSStuckFault):
                if event.stuck_mhz not in states:
                    raise ConfigurationError(
                        f"stuck frequency {event.stuck_mhz} MHz is not "
                        f"a ladder state of {topology.processor.name}"
                    )
            if isinstance(event, PowerCapFault):
                if event.cap_mhz not in states:
                    raise ConfigurationError(
                        f"power cap {event.cap_mhz} MHz is not a "
                        f"ladder state of {topology.processor.name}"
                    )

    @classmethod
    def random(
        cls,
        topology: ServerTopology,
        seed: int,
        n_events: int = 3,
        horizon_s: float = 10.0,
        response: "FaultResponse | None" = None,
    ) -> "FaultSchedule":
        """Sample a reproducible schedule for ``topology``.

        The same ``(topology, seed, n_events, horizon_s)`` always
        yields the identical schedule — event kinds, targets and times
        come from one seeded generator, never from wall-clock or
        process state.

        Args:
            topology: Geometry the events must be realisable on.
            seed: Seed for the event sampler.
            n_events: Number of events to sample.
            horizon_s: Run horizon the activation times are spread
                over; events start in the first 70% so their effects
                land inside the run.
        """
        if n_events < 0:
            raise ConfigurationError("n_events must be >= 0")
        if horizon_s <= 0:
            raise ConfigurationError("horizon must be positive")
        rng = np.random.default_rng(seed)
        ladder = topology.processor.ladder
        events = []
        kinds = ("fan", "sensor", "dvfs", "kill", "cap")
        for _ in range(n_events):
            kind = kinds[int(rng.integers(len(kinds)))]
            start = round(float(rng.uniform(0.0, 0.7)) * horizon_s, 4)
            # Half the events clear before the horizon, half persist.
            if rng.random() < 0.5:
                end = round(
                    start
                    + float(rng.uniform(0.1, 0.3)) * horizon_s,
                    4,
                )
            else:
                end = None
            if kind == "fan":
                events.append(
                    FanLaneFault(
                        start_s=start,
                        end_s=end,
                        row=int(rng.integers(topology.n_rows)),
                        lane=int(rng.integers(topology.lanes_per_row)),
                        scale=round(float(rng.uniform(0.3, 0.8)), 3),
                    )
                )
            elif kind == "sensor":
                mode = (
                    SensorFaultMode.BIAS,
                    SensorFaultMode.STUCK,
                    SensorFaultMode.DROPOUT,
                )[int(rng.integers(3))]
                events.append(
                    SensorFault(
                        start_s=start,
                        end_s=end,
                        socket_id=int(
                            rng.integers(topology.n_sockets)
                        ),
                        mode=mode,
                        bias_c=round(
                            float(rng.uniform(-15.0, 15.0)), 2
                        )
                        or 1.0,
                        stuck_c=round(float(rng.uniform(30.0, 80.0)), 2)
                        if mode is SensorFaultMode.STUCK
                        else None,
                    )
                )
            elif kind == "dvfs":
                states = ladder.states_mhz
                events.append(
                    DVFSStuckFault(
                        start_s=start,
                        end_s=end,
                        socket_id=int(
                            rng.integers(topology.n_sockets)
                        ),
                        stuck_mhz=float(
                            states[int(rng.integers(len(states)))]
                        ),
                    )
                )
            elif kind == "kill":
                events.append(
                    SocketKillFault(
                        start_s=start,
                        end_s=end,
                        socket_id=int(
                            rng.integers(topology.n_sockets)
                        ),
                    )
                )
            else:
                non_top = ladder.states_mhz[:-1] or ladder.states_mhz
                events.append(
                    PowerCapFault(
                        start_s=start,
                        end_s=end,
                        cap_mhz=float(
                            non_top[int(rng.integers(len(non_top)))]
                        ),
                    )
                )
        return cls(
            events=tuple(events),
            response=response or FaultResponse(),
        )

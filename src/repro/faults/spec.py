"""Parser for the CLI ``--faults`` mini-language.

A spec is a ``;``-separated list of clauses, each
``kind:key=value,key=value``.  Kinds and their keys:

- ``fan:row=R[,lane=L],scale=S[,start=T][,end=T]`` — fan-lane
  degradation (``scale`` is the residual airflow fraction).
- ``sensor:socket=N,mode=bias,bias=C[,start=T][,end=T]`` — biased
  telemetry; ``mode=stuck,value=C`` and ``mode=dropout`` select the
  other corruption modes.
- ``dvfs:socket=N,mhz=F[,start=T][,end=T]`` — ladder stuck at F MHz.
- ``kill:socket=N[,start=T][,end=T]`` — fail-stop socket death.
- ``cap:mhz=F[,start=T][,end=T]`` — server-wide power-cap event.
- ``random:seed=S[,n=K]`` — K seeded random events realisable on the
  topology (requires the caller to pass one).

Examples::

    fan:row=0,scale=0.5,start=2
    kill:socket=3,start=4;cap:mhz=1300,start=6,end=9
    random:seed=7,n=4

``start`` defaults to 0 (active from the first step) and ``end`` to
never clearing.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import ConfigurationError
from ..server.topology import ServerTopology
from .events import (
    DVFSStuckFault,
    FanLaneFault,
    FaultEvent,
    PowerCapFault,
    SensorFault,
    SensorFaultMode,
    SocketKillFault,
)
from .schedule import FaultResponse, FaultSchedule


def _fields(body: str, clause: str) -> Dict[str, str]:
    fields: Dict[str, str] = {}
    for item in body.split(","):
        item = item.strip()
        if not item:
            continue
        if "=" not in item:
            raise ConfigurationError(
                f"fault clause {clause!r}: expected key=value, "
                f"got {item!r}"
            )
        key, _, value = item.partition("=")
        fields[key.strip()] = value.strip()
    return fields


def _pop_float(
    fields: Dict[str, str], key: str, clause: str, default=None
) -> Optional[float]:
    if key not in fields:
        if default is not None or key in ("start", "end"):
            return default
        raise ConfigurationError(
            f"fault clause {clause!r} is missing {key}="
        )
    try:
        return float(fields.pop(key))
    except ValueError as exc:
        raise ConfigurationError(
            f"fault clause {clause!r}: {key} must be a number"
        ) from exc


def _pop_int(fields: Dict[str, str], key: str, clause: str) -> int:
    value = _pop_float(fields, key, clause)
    if value is None or value != int(value):
        raise ConfigurationError(
            f"fault clause {clause!r}: {key} must be an integer"
        )
    return int(value)


def _reject_leftovers(fields: Dict[str, str], clause: str) -> None:
    if fields:
        unknown = ", ".join(sorted(fields))
        raise ConfigurationError(
            f"fault clause {clause!r}: unknown key(s) {unknown}"
        )


def parse_fault_spec(
    spec: str,
    topology: Optional[ServerTopology] = None,
    horizon_s: float = 10.0,
    response: Optional[FaultResponse] = None,
) -> FaultSchedule:
    """Parse a ``--faults`` spec string into a :class:`FaultSchedule`.

    Args:
        spec: The clause list (see module docstring).
        topology: Required for ``random:`` clauses and, when given,
            used to validate every event immediately so CLI users get
            errors at parse time rather than mid-run.
        horizon_s: Horizon over which ``random:`` events are spread.
        response: Degradation-response overrides for the schedule.

    Raises:
        ConfigurationError: for malformed clauses or events the
            topology cannot realise.
    """
    events: List[FaultEvent] = []
    for raw in spec.split(";"):
        clause = raw.strip()
        if not clause:
            continue
        kind, _, body = clause.partition(":")
        kind = kind.strip().lower()
        fields = _fields(body, clause)
        start = _pop_float(fields, "start", clause, default=0.0)
        end = _pop_float(fields, "end", clause)
        if kind == "fan":
            lane = (
                _pop_int(fields, "lane", clause)
                if "lane" in fields
                else None
            )
            events.append(
                FanLaneFault(
                    start_s=start,
                    end_s=end,
                    row=_pop_int(fields, "row", clause),
                    lane=lane,
                    scale=_pop_float(fields, "scale", clause),
                )
            )
        elif kind == "sensor":
            socket = _pop_int(fields, "socket", clause)
            mode_name = fields.pop("mode", "bias").lower()
            try:
                mode = SensorFaultMode(mode_name)
            except ValueError as exc:
                known = ", ".join(m.value for m in SensorFaultMode)
                raise ConfigurationError(
                    f"fault clause {clause!r}: unknown sensor mode "
                    f"{mode_name!r} (known: {known})"
                ) from exc
            bias = (
                _pop_float(fields, "bias", clause)
                if "bias" in fields
                else 0.0
            )
            stuck = (
                _pop_float(fields, "value", clause)
                if "value" in fields
                else None
            )
            events.append(
                SensorFault(
                    start_s=start,
                    end_s=end,
                    socket_id=socket,
                    mode=mode,
                    bias_c=bias,
                    stuck_c=stuck,
                )
            )
        elif kind == "dvfs":
            events.append(
                DVFSStuckFault(
                    start_s=start,
                    end_s=end,
                    socket_id=_pop_int(fields, "socket", clause),
                    stuck_mhz=_pop_float(fields, "mhz", clause),
                )
            )
        elif kind == "kill":
            events.append(
                SocketKillFault(
                    start_s=start,
                    end_s=end,
                    socket_id=_pop_int(fields, "socket", clause),
                )
            )
        elif kind == "cap":
            events.append(
                PowerCapFault(
                    start_s=start,
                    end_s=end,
                    cap_mhz=_pop_float(fields, "mhz", clause),
                )
            )
        elif kind == "random":
            if topology is None:
                raise ConfigurationError(
                    "random: fault clauses need a topology"
                )
            seed = _pop_int(fields, "seed", clause)
            n = (
                _pop_int(fields, "n", clause)
                if "n" in fields
                else 3
            )
            events.extend(
                FaultSchedule.random(
                    topology, seed, n_events=n, horizon_s=horizon_s
                ).events
            )
        else:
            raise ConfigurationError(
                f"unknown fault kind {kind!r} in clause {clause!r} "
                "(known: fan, sensor, dvfs, kill, cap, random)"
            )
        _reject_leftovers(fields, clause)
    schedule = FaultSchedule(
        events=tuple(events),
        response=response or FaultResponse(),
    )
    if topology is not None:
        schedule.validate(topology)
    return schedule

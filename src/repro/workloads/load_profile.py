"""Time-varying load profiles.

The paper motivates CP's load-agnostic behaviour with the observation
that "system load can change constantly based on user demand".  This
module generates job streams whose offered load follows a piecewise-
constant profile (e.g. a morning ramp from 20% to 80%), so experiments
can measure scheduler robustness under load *transients* rather than
only at stationary operating points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import WorkloadError
from .arrivals import ArrivalProcess
from .benchmark import BenchmarkSet
from .job import Job


@dataclass(frozen=True)
class LoadPhase:
    """One constant-load segment of a profile.

    Attributes:
        duration_s: Segment length, seconds.
        load: Offered load in (0, 1] during the segment.
    """

    duration_s: float
    load: float

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise WorkloadError("phase duration must be positive")
        if not 0.0 < self.load <= 1.0:
            raise WorkloadError(f"load must lie in (0, 1], got {self.load}")


@dataclass
class VaryingLoadProcess:
    """Piecewise-constant-load Poisson arrival stream.

    Each phase generates arrivals with its own rate; job ids are
    renumbered globally and arrival times offset by the phase start.

    Attributes:
        benchmark_set: Set to draw applications from.
        phases: The load profile.
        n_sockets: Socket count the loads are normalised to.
        seed: Base seed; each phase derives its own sub-seed.
        duration_scale: Job duration multiplier (load preserving).
    """

    benchmark_set: BenchmarkSet
    phases: Sequence[LoadPhase]
    n_sockets: int
    seed: int = 0
    duration_scale: float = 1.0

    def __post_init__(self) -> None:
        if not self.phases:
            raise WorkloadError("a load profile needs >= 1 phase")
        if self.n_sockets <= 0:
            raise WorkloadError("n_sockets must be positive")

    @property
    def total_duration_s(self) -> float:
        """Length of the whole profile, seconds."""
        return sum(phase.duration_s for phase in self.phases)

    def phase_boundaries_s(self) -> List[Tuple[float, float, float]]:
        """(start, end, load) triples for each phase."""
        boundaries = []
        start = 0.0
        for phase in self.phases:
            boundaries.append((start, start + phase.duration_s, phase.load))
            start += phase.duration_s
        return boundaries

    def generate(self) -> List[Job]:
        """Generate the full job stream across all phases."""
        jobs: List[Job] = []
        job_id = 0
        for index, (start, end, load) in enumerate(
            self.phase_boundaries_s()
        ):
            process = ArrivalProcess(
                benchmark_set=self.benchmark_set,
                load=load,
                n_sockets=self.n_sockets,
                seed=self.seed * 1009 + index,
                duration_scale=self.duration_scale,
            )
            for job in process.generate(end - start):
                jobs.append(
                    Job(
                        job_id=job_id,
                        app=job.app,
                        arrival_s=start + job.arrival_s,
                        work_ms=job.work_ms,
                    )
                )
                job_id += 1
        return jobs


def ramp_profile(
    low: float,
    high: float,
    steps: int,
    total_duration_s: float,
) -> List[LoadPhase]:
    """A staircase ramp from ``low`` to ``high`` load.

    Raises:
        WorkloadError: for invalid bounds or step counts.
    """
    if steps < 2:
        raise WorkloadError("a ramp needs >= 2 steps")
    if not 0.0 < low <= 1.0 or not 0.0 < high <= 1.0:
        raise WorkloadError("loads must lie in (0, 1]")
    if total_duration_s <= 0:
        raise WorkloadError("duration must be positive")
    loads = np.linspace(low, high, steps)
    duration = total_duration_s / steps
    return [LoadPhase(duration_s=duration, load=float(l)) for l in loads]

"""Synthetic PCMark-7-like application suite.

The paper uses 19 PCMark 7 applications (gaming excluded) divided into
Computation, Storage and General Purpose sets.  We synthesise 19
stand-ins whose published statistics match Figure 6: per-set mean job
durations of a few milliseconds, intra-set CoV of benchmark means in the
0.25-0.33 band, and job-duration maxima roughly two orders of magnitude
above the mean (heavy lognormal tails).

Each application also carries a die power map used by the detailed
thermal model for the Figure 9 study: computation-heavy apps concentrate
power on a couple of CPU cores (hotter hot spots), storage apps spread
power across uncore and IO.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..errors import WorkloadError
from .benchmark import BenchmarkSet

#: Lognormal shape parameter for job durations; gives max/mean ratios of
#: roughly two orders of magnitude over ~1e5 samples (Figure 6a).
DEFAULT_DURATION_SIGMA = 1.2

#: How the non-core power is split for each set:
#: (l2, gpu, uncore, io) fractions of the non-core residual.
_UNCORE_SPLIT: Dict[BenchmarkSet, Tuple[float, float, float, float]] = {
    BenchmarkSet.COMPUTATION: (0.30, 0.20, 0.30, 0.20),
    BenchmarkSet.GENERAL_PURPOSE: (0.20, 0.30, 0.28, 0.22),
    BenchmarkSet.STORAGE: (0.10, 0.07, 0.43, 0.40),
}


@dataclass(frozen=True)
class Application:
    """One synthetic desktop application.

    Attributes:
        name: Application identifier.
        benchmark_set: Which set the application belongs to.
        mean_duration_ms: Mean job duration at the top frequency, ms.
        power_at_max_w: Socket power at 1900 MHz and 90 degC, W.
        core_power_fraction: Fraction of total power dissipated in the
            CPU cores.
        active_cores: How many of the four cores carry that power
            (fewer active cores concentrate heat).
        duration_sigma: Lognormal sigma of the job duration
            distribution.
    """

    name: str
    benchmark_set: BenchmarkSet
    mean_duration_ms: float
    power_at_max_w: float
    core_power_fraction: float
    active_cores: int
    duration_sigma: float = DEFAULT_DURATION_SIGMA

    def __post_init__(self) -> None:
        if self.mean_duration_ms <= 0:
            raise WorkloadError(
                f"{self.name}: mean duration must be positive"
            )
        if self.power_at_max_w <= 0:
            raise WorkloadError(f"{self.name}: power must be positive")
        if not 0.0 < self.core_power_fraction < 1.0:
            raise WorkloadError(
                f"{self.name}: core power fraction must lie in (0, 1)"
            )
        if not 1 <= self.active_cores <= 4:
            raise WorkloadError(
                f"{self.name}: active cores must lie in 1..4"
            )
        if self.duration_sigma <= 0:
            raise WorkloadError(f"{self.name}: sigma must be positive")

    def sample_durations_ms(
        self, n: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw ``n`` job durations (ms) from the app's distribution.

        Lognormal with the app's sigma, scaled so the distribution mean
        equals ``mean_duration_ms``.
        """
        if n < 0:
            raise WorkloadError(f"n must be non-negative, got {n}")
        mu = math.log(self.mean_duration_ms) - self.duration_sigma**2 / 2
        return rng.lognormal(mean=mu, sigma=self.duration_sigma, size=n)

    def block_power_map(self, total_power_w: float) -> Dict[str, float]:
        """Distribute ``total_power_w`` over the Kabini floorplan blocks.

        Core power is concentrated in the first ``active_cores`` cores;
        the remainder goes to l2/gpu/uncore/io per the set template.
        """
        if total_power_w < 0:
            raise WorkloadError("total power must be non-negative")
        core_power = total_power_w * self.core_power_fraction
        per_core = core_power / self.active_cores
        powers = {f"core{i}": 0.0 for i in range(4)}
        for i in range(self.active_cores):
            powers[f"core{i}"] = per_core
        residual = total_power_w - core_power
        l2, gpu, uncore, io = _UNCORE_SPLIT[self.benchmark_set]
        powers["l2"] = residual * l2
        powers["gpu"] = residual * gpu
        powers["uncore"] = residual * uncore
        powers["io"] = residual * io
        return powers


def _make_apps() -> Tuple[Application, ...]:
    computation = [
        ("video-transcode", 2.6, 16.5),
        ("physics-sim", 3.2, 17.2),
        ("image-render", 3.6, 17.8),
        ("data-compress", 4.0, 18.3),
        ("encryption", 4.8, 18.8),
        ("spreadsheet-calc", 5.8, 19.4),
    ]
    storage = [
        ("app-loading", 5.2, 9.3),
        ("file-copy", 6.4, 9.9),
        ("db-import", 7.2, 10.3),
        ("virus-scan", 8.0, 10.7),
        ("media-import", 9.6, 11.2),
        ("system-backup", 11.6, 11.6),
    ]
    general = [
        ("web-browsing", 3.6, 12.6),
        ("email-sync", 4.5, 13.2),
        ("word-processing", 5.4, 13.7),
        ("presentation", 6.0, 14.1),
        ("pdf-render", 6.6, 14.5),
        ("photo-edit", 7.8, 15.0),
        ("video-playback", 8.1, 14.9),
    ]
    apps: List[Application] = []
    for name, duration, power in computation:
        apps.append(
            Application(
                name=name,
                benchmark_set=BenchmarkSet.COMPUTATION,
                mean_duration_ms=duration,
                power_at_max_w=power,
                core_power_fraction=0.62,
                active_cores=3,
            )
        )
    for name, duration, power in storage:
        apps.append(
            Application(
                name=name,
                benchmark_set=BenchmarkSet.STORAGE,
                mean_duration_ms=duration,
                power_at_max_w=power,
                core_power_fraction=0.28,
                active_cores=1,
            )
        )
    for name, duration, power in general:
        apps.append(
            Application(
                name=name,
                benchmark_set=BenchmarkSet.GENERAL_PURPOSE,
                mean_duration_ms=duration,
                power_at_max_w=power,
                core_power_fraction=0.46,
                active_cores=2,
            )
        )
    return tuple(apps)


#: The full synthetic 19-application suite.
PCMARK_APPS: Tuple[Application, ...] = _make_apps()


def apps_in_set(benchmark_set: BenchmarkSet) -> Tuple[Application, ...]:
    """All applications belonging to a benchmark set."""
    return tuple(
        app for app in PCMARK_APPS if app.benchmark_set == benchmark_set
    )


def app_by_name(name: str) -> Application:
    """Look up an application by name.

    Raises:
        WorkloadError: if the name is unknown.
    """
    for app in PCMARK_APPS:
        if app.name == name:
            return app
    raise WorkloadError(f"unknown application {name!r}")

"""Job arrival process parameterized by system load.

The paper varies the job inter-arrival duration to impose different
loads.  We use a Poisson process: at load ``L`` on a server with ``N``
sockets and set mean job duration ``E[d]`` (measured at the top
frequency), arrivals occur at rate

.. math::

    \\lambda = L \\cdot N \\cdot perf(f_{sustained}) / E[d]

so that ``L = 1`` exactly saturates the server running at the highest
*sustained* (non-boost) frequency — the paper's fully-loaded operating
point, where a socket is only expected to hold 1500 MHz.  Loads are
therefore comparable across benchmark sets with different frequency
sensitivities, and the 80-100% range sits at the saturation edge where
scheduling quality matters most, rather than beyond it.  Each arrival
samples an application uniformly from the chosen set and a duration
from that application's distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..errors import WorkloadError
from .benchmark import BenchmarkSet, profile_for
from .job import Job
from .pcmark import Application, apps_in_set


def load_to_arrival_rate(
    load: float, n_sockets: int, mean_duration_ms: float
) -> float:
    """Arrival rate (jobs/second) that offers ``load`` of server capacity.

    Raises:
        WorkloadError: for out-of-range inputs.
    """
    if not 0.0 < load <= 1.0:
        raise WorkloadError(f"load must lie in (0, 1], got {load}")
    if n_sockets <= 0:
        raise WorkloadError(f"n_sockets must be positive, got {n_sockets}")
    if mean_duration_ms <= 0:
        raise WorkloadError(
            f"mean duration must be positive, got {mean_duration_ms}"
        )
    return load * n_sockets / (mean_duration_ms / 1000.0)


@dataclass
class ArrivalProcess:
    """Poisson arrival stream over a benchmark set.

    Attributes:
        benchmark_set: Set to draw applications from.
        load: Offered load in (0, 1].
        n_sockets: Number of sockets the load is normalised to.
        seed: RNG seed; identical seeds give identical streams, which is
            how experiments hold the workload fixed across schedulers.
        apps: Application pool (defaults to the set's applications).
        duration_scale: Multiplier applied to every job duration (and to
            the mean duration used for the rate, so the offered load is
            unchanged).  Scaled-down simulations use this to keep the
            job count tractable while preserving utilisation patterns.
    """

    benchmark_set: BenchmarkSet
    load: float
    n_sockets: int
    seed: int = 0
    apps: Sequence[Application] = ()
    duration_scale: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.load <= 1.0:
            raise WorkloadError(f"load must lie in (0, 1], got {self.load}")
        if self.n_sockets <= 0:
            raise WorkloadError("n_sockets must be positive")
        if not self.apps:
            self.apps = apps_in_set(self.benchmark_set)
        if not self.apps:
            raise WorkloadError(
                f"no applications registered for {self.benchmark_set}"
            )
        if self.duration_scale <= 0:
            raise WorkloadError("duration_scale must be positive")

    @property
    def mean_duration_ms(self) -> float:
        """Mean (scaled) job duration across the application pool, ms."""
        return self.duration_scale * float(
            np.mean([app.mean_duration_ms for app in self.apps])
        )

    @property
    def sustained_perf_factor(self) -> float:
        """Relative performance at the sustained frequency for this set.

        With the X2150 ladder, ``1 - perf_drop / 2`` (1500 MHz sits
        halfway down the 1900-1100 MHz range).
        """
        from ..server.processors import X2150_LADDER
        from .perf_model import relative_performance

        drop = profile_for(self.benchmark_set).perf_drop_at_min
        return float(
            relative_performance(
                X2150_LADDER.sustained_mhz, drop, X2150_LADDER
            )
        )

    @property
    def rate_per_s(self) -> float:
        """Poisson arrival rate, jobs per second."""
        return self.sustained_perf_factor * load_to_arrival_rate(
            self.load, self.n_sockets, self.mean_duration_ms
        )

    def generate(
        self, until_s: float, max_jobs: Optional[int] = None
    ) -> List[Job]:
        """Generate every arrival in ``[0, until_s)``.

        Args:
            until_s: Horizon, seconds.
            max_jobs: Optional hard cap on the number of jobs.

        Returns:
            Jobs sorted by arrival time with durations pre-sampled.
        """
        if until_s <= 0:
            raise WorkloadError(f"horizon must be positive, got {until_s}")
        rng = np.random.default_rng(self.seed)
        rate = self.rate_per_s
        expected = int(rate * until_s * 1.2) + 16
        gaps = rng.exponential(1.0 / rate, size=expected)
        times = np.cumsum(gaps)
        while times.size and times[-1] < until_s:
            more = rng.exponential(1.0 / rate, size=expected)
            times = np.concatenate([times, times[-1] + np.cumsum(more)])
        times = times[times < until_s]
        if max_jobs is not None:
            times = times[:max_jobs]

        app_indices = rng.integers(0, len(self.apps), size=times.size)
        jobs: List[Job] = []
        for job_id, (arrival, app_index) in enumerate(
            zip(times, app_indices)
        ):
            app = self.apps[app_index]
            duration = self.duration_scale * float(
                app.sample_durations_ms(1, rng)[0]
            )
            jobs.append(
                Job(
                    job_id=job_id,
                    app=app,
                    arrival_s=float(arrival),
                    work_ms=duration,
                )
            )
        return jobs

"""Workload substrate: synthetic PCMark-7-like VDI applications.

The paper drives its simulations with traces of 19 PCMark 7 desktop
applications captured with Windows Xperf, grouped into three sets:
Computation intensive, Storage intensive, and General Purpose (GP).  We
cannot redistribute those traces, so this package synthesises workloads
with the same published statistics:

- average job durations of a few milliseconds, with maxima roughly two
  orders of magnitude higher (Figure 6a);
- intra-set coefficient of variation of benchmark mean durations between
  0.25 and 0.33 (Figure 6b);
- set-level power at the top frequency and 90 degC of 18 W
  (Computation), 14 W (GP) and 10.5 W (Storage), with Computation the
  most frequency sensitive (-35% performance at -800 MHz) and Storage
  the least (Figure 7).
"""

from .benchmark import BenchmarkSet, SET_PROFILES, SetProfile
from .pcmark import PCMARK_APPS, Application, apps_in_set
from .power_model import PowerModel, leakage_power
from .perf_model import PerfModel, relative_performance
from .job import Job
from .arrivals import ArrivalProcess, load_to_arrival_rate
from .traces import XperfTrace, capture_trace, arrival_model_from_trace
from .load_profile import LoadPhase, VaryingLoadProcess, ramp_profile

__all__ = [
    "BenchmarkSet",
    "SET_PROFILES",
    "SetProfile",
    "PCMARK_APPS",
    "Application",
    "apps_in_set",
    "PowerModel",
    "leakage_power",
    "PerfModel",
    "relative_performance",
    "Job",
    "ArrivalProcess",
    "load_to_arrival_rate",
    "XperfTrace",
    "capture_trace",
    "arrival_model_from_trace",
    "LoadPhase",
    "VaryingLoadProcess",
    "ramp_profile",
]

"""Benchmark sets and their aggregate power / sensitivity profiles."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict

from ..errors import WorkloadError


class BenchmarkSet(enum.Enum):
    """The three PCMark-derived benchmark sets the paper studies."""

    COMPUTATION = "Computation"
    STORAGE = "Storage"
    GENERAL_PURPOSE = "GP"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class SetProfile:
    """Aggregate properties of a benchmark set (Figures 6 and 7).

    Attributes:
        benchmark_set: Which set this profile describes.
        power_at_max_w: Total socket power at 1900 MHz and 90 degC, W.
        perf_drop_at_min: Fractional performance loss when running at
            1100 MHz instead of 1900 MHz (0.35 means -35%).
        dynamic_exponent: Exponent alpha of the dynamic power law
            ``P_dyn(f) = P_dyn(f_max) * (f / f_max) ** alpha``.
        mean_duration_ms: Average job duration across the set's
            benchmarks, ms.
    """

    benchmark_set: BenchmarkSet
    power_at_max_w: float
    perf_drop_at_min: float
    dynamic_exponent: float
    mean_duration_ms: float

    def __post_init__(self) -> None:
        if self.power_at_max_w <= 0:
            raise WorkloadError("power_at_max_w must be positive")
        if not 0.0 <= self.perf_drop_at_min < 1.0:
            raise WorkloadError("perf_drop_at_min must lie in [0, 1)")
        if self.dynamic_exponent <= 0:
            raise WorkloadError("dynamic_exponent must be positive")
        if self.mean_duration_ms <= 0:
            raise WorkloadError("mean_duration_ms must be positive")


#: Set-level profiles anchored to Figure 6 / Figure 7 of the paper.
SET_PROFILES: Dict[BenchmarkSet, SetProfile] = {
    BenchmarkSet.COMPUTATION: SetProfile(
        benchmark_set=BenchmarkSet.COMPUTATION,
        power_at_max_w=18.0,
        perf_drop_at_min=0.35,
        dynamic_exponent=1.7,
        mean_duration_ms=4.0,
    ),
    BenchmarkSet.GENERAL_PURPOSE: SetProfile(
        benchmark_set=BenchmarkSet.GENERAL_PURPOSE,
        power_at_max_w=14.0,
        perf_drop_at_min=0.25,
        dynamic_exponent=1.55,
        mean_duration_ms=6.0,
    ),
    BenchmarkSet.STORAGE: SetProfile(
        benchmark_set=BenchmarkSet.STORAGE,
        power_at_max_w=10.5,
        perf_drop_at_min=0.10,
        dynamic_exponent=1.35,
        mean_duration_ms=8.0,
    ),
}


def profile_for(benchmark_set: BenchmarkSet) -> SetProfile:
    """Profile of a benchmark set.

    Raises:
        WorkloadError: if the set has no registered profile.
    """
    try:
        return SET_PROFILES[benchmark_set]
    except KeyError as exc:
        raise WorkloadError(
            f"no profile registered for {benchmark_set!r}"
        ) from exc

"""Performance versus frequency model (paper Figure 7b).

Performance is reported relative to execution at the top frequency
(1900 MHz).  The paper measured a roughly linear relationship, with the
Computation set losing ~35% performance over an 800 MHz reduction,
Storage nearly insensitive, and GP in between.  We model::

    perf(f) = 1 - drop * (f_max - f) / (f_max - f_min)

so ``perf(f_max) = 1`` and ``perf(f_min) = 1 - drop``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from ..errors import WorkloadError
from ..server.processors import FrequencyLadder, X2150_LADDER
from .benchmark import BenchmarkSet, profile_for

ArrayLike = Union[float, np.ndarray]


def relative_performance(
    freq_mhz: ArrayLike,
    perf_drop_at_min: float,
    ladder: FrequencyLadder = X2150_LADDER,
) -> ArrayLike:
    """Performance at ``freq_mhz`` relative to the ladder's top state."""
    if not 0.0 <= perf_drop_at_min < 1.0:
        raise WorkloadError(
            f"perf drop must lie in [0, 1), got {perf_drop_at_min}"
        )
    span = ladder.max_mhz - ladder.min_mhz
    if span <= 0:
        return 1.0 if np.isscalar(freq_mhz) else np.ones_like(
            np.asarray(freq_mhz, dtype=float)
        )
    freq = np.asarray(freq_mhz, dtype=float)
    result = 1.0 - perf_drop_at_min * (ladder.max_mhz - freq) / span
    if np.isscalar(freq_mhz):
        return float(result)
    return result


@dataclass(frozen=True)
class PerfModel:
    """Performance model for one benchmark set.

    Attributes:
        perf_drop_at_min: Fractional slowdown at the bottom of the
            ladder.
        ladder: DVFS ladder the model is defined over.
    """

    perf_drop_at_min: float
    ladder: FrequencyLadder = X2150_LADDER

    def __post_init__(self) -> None:
        if not 0.0 <= self.perf_drop_at_min < 1.0:
            raise WorkloadError(
                f"perf drop must lie in [0, 1), got {self.perf_drop_at_min}"
            )

    @classmethod
    def for_set(
        cls,
        benchmark_set: BenchmarkSet,
        ladder: FrequencyLadder = X2150_LADDER,
    ) -> "PerfModel":
        """Performance model from a set-level profile (Figure 7b)."""
        return cls(
            perf_drop_at_min=profile_for(benchmark_set).perf_drop_at_min,
            ladder=ladder,
        )

    def relative_performance(self, freq_mhz: ArrayLike) -> ArrayLike:
        """Performance relative to the top frequency; see module doc."""
        return relative_performance(
            freq_mhz, self.perf_drop_at_min, self.ladder
        )

    def execution_rate(self, freq_mhz: ArrayLike) -> ArrayLike:
        """Work units retired per second of wall time.

        A job with nominal duration ``d`` (its runtime at the top
        frequency) holds ``d`` units of work; at a lower frequency the
        socket retires work at ``relative_performance(f)`` units per
        unit time.
        """
        return self.relative_performance(freq_mhz)

    def runtime_expansion(self, freq_mhz: float) -> float:
        """Slowdown factor when running entirely at ``freq_mhz``."""
        perf = self.relative_performance(freq_mhz)
        if perf <= 0:
            raise WorkloadError(
                f"non-positive performance at {freq_mhz} MHz"
            )
        return 1.0 / float(perf)

"""Synthetic Xperf-style trace capture and replay.

The paper captures hardware traces of PCMark runs with Windows Xperf,
which records fine-grained idle/active transitions of the socket; a job
arrival model is then fitted to those traces.  This module reproduces the
*methodology* on synthetic data: :func:`capture_trace` "runs" an
application on a single socket and records its busy intervals, and
:func:`arrival_model_from_trace` extracts an empirical arrival model that
can regenerate statistically similar job streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import WorkloadError
from .job import Job
from .pcmark import Application


@dataclass(frozen=True)
class XperfTrace:
    """A captured activity trace of one application.

    Attributes:
        app_name: Application the trace was captured from.
        duration_s: Total trace length, seconds.
        busy_intervals_s: Sorted, non-overlapping (start, end) pairs in
            seconds during which the socket was active.
    """

    app_name: str
    duration_s: float
    busy_intervals_s: Tuple[Tuple[float, float], ...]

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise WorkloadError("trace duration must be positive")
        previous_end = 0.0
        for start, end in self.busy_intervals_s:
            if start < previous_end or end <= start:
                raise WorkloadError(
                    "busy intervals must be sorted and non-overlapping"
                )
            if end > self.duration_s:
                raise WorkloadError("busy interval exceeds trace duration")
            previous_end = end

    @property
    def busy_fraction(self) -> float:
        """Fraction of the trace the socket was active."""
        busy = sum(end - start for start, end in self.busy_intervals_s)
        return busy / self.duration_s

    @property
    def job_durations_s(self) -> List[float]:
        """Length of each busy interval, seconds."""
        return [end - start for start, end in self.busy_intervals_s]

    @property
    def inter_arrival_gaps_s(self) -> List[float]:
        """Gaps between consecutive busy-interval starts, seconds."""
        starts = [start for start, _ in self.busy_intervals_s]
        return [b - a for a, b in zip(starts, starts[1:])]


def capture_trace(
    app: Application,
    duration_s: float,
    load: float,
    seed: int = 0,
) -> XperfTrace:
    """Synthesize an Xperf-like capture of ``app`` at a given load.

    Jobs arrive Poisson at a rate that offers ``load`` of one socket's
    capacity and are served first-come-first-served on that socket; the
    serialised service periods become the busy intervals of the trace
    (back-to-back jobs merge into one interval, exactly as a real
    idle/active transition log would show).
    """
    if duration_s <= 0:
        raise WorkloadError(f"duration must be positive, got {duration_s}")
    if not 0.0 < load <= 1.0:
        raise WorkloadError(f"load must lie in (0, 1], got {load}")
    rng = np.random.default_rng(seed)
    rate = load / (app.mean_duration_ms / 1000.0)
    intervals: List[Tuple[float, float]] = []
    time = float(rng.exponential(1.0 / rate))
    server_free_at = 0.0
    while time < duration_s:
        service_s = float(app.sample_durations_ms(1, rng)[0]) / 1000.0
        start = max(time, server_free_at)
        end = start + service_s
        if end > duration_s:
            break
        if intervals and start <= intervals[-1][1] + 1e-12:
            intervals[-1] = (intervals[-1][0], end)
        else:
            intervals.append((start, end))
        server_free_at = end
        time += float(rng.exponential(1.0 / rate))
    return XperfTrace(
        app_name=app.name,
        duration_s=duration_s,
        busy_intervals_s=tuple(intervals),
    )


@dataclass
class EmpiricalArrivalModel:
    """A job arrival model fitted to a captured trace.

    Replays job durations and inter-arrival gaps by resampling the
    empirical distributions observed in the trace — the same methodology
    the paper applies to its Xperf captures.

    Attributes:
        app: Application jobs are attributed to.
        durations_s: Empirical job durations, seconds.
        gaps_s: Empirical inter-arrival gaps, seconds.
    """

    app: Application
    durations_s: Sequence[float]
    gaps_s: Sequence[float]

    def __post_init__(self) -> None:
        if not self.durations_s:
            raise WorkloadError("empirical model needs >= 1 job duration")
        if not self.gaps_s:
            raise WorkloadError("empirical model needs >= 1 arrival gap")
        if any(d <= 0 for d in self.durations_s):
            raise WorkloadError("job durations must be positive")
        if any(g <= 0 for g in self.gaps_s):
            raise WorkloadError("arrival gaps must be positive")

    @property
    def mean_duration_s(self) -> float:
        """Mean empirical job duration, seconds."""
        return float(np.mean(self.durations_s))

    @property
    def mean_gap_s(self) -> float:
        """Mean empirical inter-arrival gap, seconds."""
        return float(np.mean(self.gaps_s))

    def generate(self, until_s: float, seed: int = 0) -> List[Job]:
        """Regenerate a job stream statistically similar to the trace."""
        if until_s <= 0:
            raise WorkloadError(f"horizon must be positive, got {until_s}")
        rng = np.random.default_rng(seed)
        durations = np.asarray(self.durations_s, dtype=float)
        gaps = np.asarray(self.gaps_s, dtype=float)
        jobs: List[Job] = []
        time = float(rng.choice(gaps))
        job_id = 0
        while time < until_s:
            duration_s = float(rng.choice(durations))
            jobs.append(
                Job(
                    job_id=job_id,
                    app=self.app,
                    arrival_s=time,
                    work_ms=duration_s * 1000.0,
                )
            )
            job_id += 1
            time += float(rng.choice(gaps))
        return jobs


def arrival_model_from_trace(
    trace: XperfTrace, app: Application
) -> EmpiricalArrivalModel:
    """Fit an :class:`EmpiricalArrivalModel` to a captured trace.

    Raises:
        WorkloadError: if the trace has fewer than two busy intervals
            (no inter-arrival information).
    """
    if len(trace.busy_intervals_s) < 2:
        raise WorkloadError(
            "trace needs >= 2 busy intervals to fit an arrival model"
        )
    return EmpiricalArrivalModel(
        app=app,
        durations_s=trace.job_durations_s,
        gaps_s=trace.inter_arrival_gaps_s,
    )

"""Socket power model: dynamic power vs frequency, leakage vs temperature.

The paper measured power in hardware at several P-states and, estimating
leakage as 30% of TDP at the 90 degC measurement temperature, separated
dynamic from static power (Figure 7a).  We reproduce that decomposition:

- dynamic power follows ``P_dyn(f) = P_dyn(f_max) * (f / f_max) ** alpha``
  with a per-set exponent (Computation's power falls fastest with
  frequency, Storage's slowest);
- leakage is linear in chip temperature and equals 30% of TDP at 90 degC;
- a power-gated idle socket draws a flat 10% of TDP (handled by the
  socket spec, not here).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from ..errors import WorkloadError
from ..server.processors import FrequencyLadder, X2150_LADDER
from .benchmark import BenchmarkSet, SetProfile, profile_for
from .pcmark import Application

#: Leakage fraction of TDP at the reference temperature (paper §III-A).
LEAKAGE_TDP_FRACTION = 0.30

#: Reference temperature at which leakage equals 30% of TDP, degC.
LEAKAGE_REFERENCE_C = 90.0

#: Relative leakage change per degC around the reference.
LEAKAGE_TEMP_COEFF = 0.005

#: Leakage never falls below this fraction of its reference value.
LEAKAGE_FLOOR_FRACTION = 0.25

ArrayLike = Union[float, np.ndarray]


def leakage_power(
    temperature_c: ArrayLike,
    tdp_w: float,
    reference_c: float = LEAKAGE_REFERENCE_C,
    temp_coeff: float = LEAKAGE_TEMP_COEFF,
    xp=np,
) -> ArrayLike:
    """Temperature-dependent leakage power, W.

    Equals ``LEAKAGE_TDP_FRACTION * tdp_w`` at the reference temperature
    and varies linearly with a floor to stay physical at low
    temperatures.

    Args:
        xp: Array namespace (``numpy`` default, or a backend's ``xp``
            for traced execution); the float op order is namespace
            independent.
    """
    if tdp_w <= 0:
        raise WorkloadError(f"TDP must be positive, got {tdp_w}")
    reference_leakage = LEAKAGE_TDP_FRACTION * tdp_w
    factor = 1.0 + temp_coeff * (xp.asarray(temperature_c) - reference_c)
    factor = xp.maximum(factor, LEAKAGE_FLOOR_FRACTION)
    result = reference_leakage * factor
    if np.isscalar(temperature_c):
        return float(result)
    return result


@dataclass(frozen=True)
class PowerModel:
    """Power model for one benchmark set (or application) on one socket.

    Attributes:
        power_at_max_w: Total power at the top frequency and 90 degC, W.
        dynamic_exponent: Exponent alpha of the dynamic power law.
        tdp_w: Socket TDP (sets the leakage magnitude), W.
        ladder: DVFS ladder (sets the top frequency).
    """

    power_at_max_w: float
    dynamic_exponent: float
    tdp_w: float = 22.0
    ladder: FrequencyLadder = X2150_LADDER

    def __post_init__(self) -> None:
        if self.power_at_max_w <= 0:
            raise WorkloadError("power_at_max_w must be positive")
        if self.dynamic_exponent <= 0:
            raise WorkloadError("dynamic_exponent must be positive")
        if self.tdp_w <= 0:
            raise WorkloadError("tdp_w must be positive")
        if self.dynamic_power_at_max_w <= 0:
            raise WorkloadError(
                "power_at_max_w must exceed reference leakage "
                f"({LEAKAGE_TDP_FRACTION * self.tdp_w:.2f} W)"
            )

    @classmethod
    def for_set(
        cls,
        benchmark_set: BenchmarkSet,
        tdp_w: float = 22.0,
        ladder: FrequencyLadder = X2150_LADDER,
    ) -> "PowerModel":
        """Power model from a set-level profile (Figure 7a)."""
        profile: SetProfile = profile_for(benchmark_set)
        return cls(
            power_at_max_w=profile.power_at_max_w,
            dynamic_exponent=profile.dynamic_exponent,
            tdp_w=tdp_w,
            ladder=ladder,
        )

    @classmethod
    def for_app(
        cls,
        app: Application,
        tdp_w: float = 22.0,
        ladder: FrequencyLadder = X2150_LADDER,
    ) -> "PowerModel":
        """Power model for a single application."""
        profile = profile_for(app.benchmark_set)
        return cls(
            power_at_max_w=app.power_at_max_w,
            dynamic_exponent=profile.dynamic_exponent,
            tdp_w=tdp_w,
            ladder=ladder,
        )

    @property
    def dynamic_power_at_max_w(self) -> float:
        """Dynamic power at the top frequency, W."""
        return self.power_at_max_w - LEAKAGE_TDP_FRACTION * self.tdp_w

    def dynamic_power(self, freq_mhz: ArrayLike) -> ArrayLike:
        """Dynamic power at a frequency, W."""
        ratio = np.asarray(freq_mhz, dtype=float) / self.ladder.max_mhz
        result = self.dynamic_power_at_max_w * ratio**self.dynamic_exponent
        if np.isscalar(freq_mhz):
            return float(result)
        return result

    def total_power(
        self, freq_mhz: ArrayLike, temperature_c: ArrayLike
    ) -> ArrayLike:
        """Total socket power at a frequency and chip temperature, W."""
        dynamic = self.dynamic_power(freq_mhz)
        static = leakage_power(temperature_c, self.tdp_w)
        result = np.asarray(dynamic) + np.asarray(static)
        if np.isscalar(freq_mhz) and np.isscalar(temperature_c):
            return float(result)
        return result

    def power_at_reference(self, freq_mhz: ArrayLike) -> ArrayLike:
        """Total power at 90 degC — the quantity Figure 7a plots."""
        return self.total_power(freq_mhz, LEAKAGE_REFERENCE_C)

"""Job representation used by the scheduler and simulation engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import WorkloadError
from .pcmark import Application


@dataclass
class Job:
    """One unit of schedulable work.

    A job carries ``work_ms`` units of work — its runtime in milliseconds
    if executed entirely at the top frequency.  Running at a lower
    frequency retires work more slowly (see
    :meth:`repro.workloads.perf_model.PerfModel.execution_rate`), so the
    observed runtime expands.

    Attributes:
        job_id: Unique identifier within one simulation.
        app: The application this job belongs to.
        arrival_s: Arrival time, seconds since simulation start.
        work_ms: Nominal duration at the top frequency, ms.
        socket_id: Socket the job ran on (set by the engine).
        start_s: Time the job started executing (set by the engine).
        finish_s: Time the job completed (set by the engine).
    """

    job_id: int
    app: Application
    arrival_s: float
    work_ms: float
    socket_id: Optional[int] = None
    start_s: Optional[float] = None
    finish_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.arrival_s < 0:
            raise WorkloadError("arrival time must be non-negative")
        if self.work_ms <= 0:
            raise WorkloadError("job work must be positive")

    @property
    def completed(self) -> bool:
        """Whether the engine recorded a completion for this job."""
        return self.finish_s is not None

    @property
    def nominal_duration_s(self) -> float:
        """Runtime at the top frequency, seconds."""
        return self.work_ms / 1000.0

    @property
    def response_time_s(self) -> float:
        """Arrival-to-completion time, seconds.

        Raises:
            WorkloadError: if the job has not completed.
        """
        if self.finish_s is None:
            raise WorkloadError(f"job {self.job_id} has not completed")
        return self.finish_s - self.arrival_s

    @property
    def runtime_expansion(self) -> float:
        """Service time divided by the nominal duration (>= 1 in practice).

        The paper's primary metric: how much longer the job took than it
        would have at the top frequency, counted from when it started
        executing.

        Raises:
            WorkloadError: if the job has not started and completed.
        """
        if self.start_s is None or self.finish_s is None:
            raise WorkloadError(f"job {self.job_id} has not completed")
        return (self.finish_s - self.start_s) / self.nominal_duration_s

"""Simulation parameters (paper Table III)."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Tuple

from ..errors import ConfigurationError


@dataclass(frozen=True)
class SimulationParameters:
    """Every tunable of the overall simulation model.

    Defaults reproduce Table III of the paper.  Scaled presets shrink the
    horizon, thermal time constant and job count for tractable pure-
    Python runs while preserving the regime (job duration << socket
    thermal time constant << simulated horizon).

    Attributes:
        temperature_limit_c: DVFS temperature limit, degC.
        power_manager_interval_s: Frequency change interval (the power
            manager period), seconds.
        chip_tau_s: On-chip thermal time constant, seconds.
        socket_tau_s: Socket (heat-sink mass) thermal time constant,
            seconds.
        inlet_c: Server inlet air temperature, degC.
        socket_airflow_cfm: Airflow over each socket, CFM.
        r_int: Chip internal thermal resistance, degC/W.
        sim_time_s: Simulated horizon, seconds.
        warmup_s: Initial span excluded from every metric, seconds.
        duration_scale: Job duration multiplier (load-preserving).
        seed: Base RNG seed for arrivals and randomized policies.
        history_tau_s: Smoothing constant of the historical-temperature
            tracker used by the A-Random policy, seconds.
        boost_chip_temp_limit_c: Boost governor threshold, degC.  The
            1700/1900 MHz states are opportunistic boost states; per the
            BKDG a fully loaded socket is only expected to *sustain* the
            highest non-boost state (1500 MHz), so boost is granted only
            while the predicted chip temperature stays under this
            threshold.  45 degC is calibrated so a continuously busy
            Computation socket breathing inlet air settles into a
            1500 MHz + opportunistic-boost duty cycle.
        warm_start: Initialise the thermal field at the load-consistent
            steady state instead of uniform inlet temperature.  The
            coupled sink chain settles stage by stage (~3 sink time
            constants per chain position), which the paper's 30-minute
            horizon absorbs but scaled runs cannot; warm starting plus
            the warm-up window recovers the converged regime.
    """

    temperature_limit_c: float = 95.0
    power_manager_interval_s: float = 0.001
    chip_tau_s: float = 0.005
    socket_tau_s: float = 30.0
    inlet_c: float = 18.0
    socket_airflow_cfm: float = 6.35
    r_int: float = 0.205
    sim_time_s: float = 1800.0
    warmup_s: float = 60.0
    duration_scale: float = 1.0
    seed: int = 0
    history_tau_s: float = 5.0
    boost_chip_temp_limit_c: float = 45.0
    warm_start: bool = True

    def __post_init__(self) -> None:
        # A boost threshold at or below the inlet is legitimate: it
        # means boost is never grantable (e.g. hot-aisle derating
        # studies or the no-boost ablation).
        if self.boost_chip_temp_limit_c <= 0:
            raise ConfigurationError(
                "boost governor threshold must be positive"
            )
        if self.temperature_limit_c <= self.inlet_c:
            raise ConfigurationError(
                "temperature limit must exceed the inlet temperature"
            )
        if self.power_manager_interval_s <= 0:
            raise ConfigurationError(
                "power manager interval must be positive"
            )
        if self.chip_tau_s <= 0 or self.socket_tau_s <= 0:
            raise ConfigurationError("time constants must be positive")
        if self.socket_airflow_cfm <= 0:
            raise ConfigurationError("socket airflow must be positive")
        if self.r_int <= 0:
            raise ConfigurationError("r_int must be positive")
        if self.sim_time_s <= 0:
            raise ConfigurationError("simulation time must be positive")
        if not 0 <= self.warmup_s < self.sim_time_s:
            raise ConfigurationError(
                "warmup must be non-negative and below the horizon"
            )
        if self.duration_scale <= 0:
            raise ConfigurationError("duration scale must be positive")
        if self.history_tau_s <= 0:
            raise ConfigurationError("history tau must be positive")

    def with_overrides(self, **kwargs) -> "SimulationParameters":
        """A copy with the given fields replaced."""
        return replace(self, **kwargs)

    @property
    def measured_span_s(self) -> float:
        """Length of the measurement window, seconds."""
        return self.sim_time_s - self.warmup_s


#: Human-readable reproduction of Table III for the given parameters.
def table_iii_rows(
    params: "SimulationParameters" = SimulationParameters(),
) -> List[Tuple[str, str]]:
    """Render Table III as (parameter, value) rows."""
    return [
        ("Temperature limit", f"{params.temperature_limit_c:g} C"),
        (
            "Frequency change interval",
            f"{params.power_manager_interval_s * 1000:g} msec",
        ),
        (
            "On-chip thermal time constant",
            f"{params.chip_tau_s * 1000:g} msec",
        ),
        (
            "Socket thermal time constant",
            f"{params.socket_tau_s:g} seconds",
        ),
        ("Server inlet temperature", f"{params.inlet_c:g} C"),
        ("Airflow at sockets", f"{params.socket_airflow_cfm:g} CFM"),
        ("R_Int", f"{params.r_int:g} Celsius/Watt"),
        ("R_Ext 18-fin", "1.578 Celsius/Watt"),
        ("R_Ext 30-fin", "1.056 Celsius/Watt"),
        ("theta(Power, 18-fin)", "4.41 - Power x 0.0896"),
        ("theta(Power, 30-fin)", "4.45 - Power x 0.0916"),
        ("Frequency", "1900MHz - 1100MHz"),
        (
            "Power management",
            "Highest frequency allowed under "
            f"{params.temperature_limit_c:g} C",
        ),
        ("Simulation time", f"{params.sim_time_s:g} seconds"),
    ]


#: Table III rendered with the paper-faithful defaults.
TABLE_III_ROWS = table_iii_rows()

"""Simulation configuration: Table III parameters and run presets."""

from .parameters import SimulationParameters, TABLE_III_ROWS
from .presets import paper_faithful, scaled, smoke

__all__ = [
    "SimulationParameters",
    "TABLE_III_ROWS",
    "paper_faithful",
    "scaled",
    "smoke",
]

"""Run presets: paper-faithful, scaled, and smoke-test parameter sets.

The paper simulates 30 minutes of server time (>= 10 M jobs) per data
point.  A pure-Python reproduction cannot afford that for a full
scheduler x load x workload sweep, so we provide *scaled* presets that
preserve the governing regime

    job duration  <<  socket thermal time constant  <<  horizon

while shrinking absolute times.  Scaling the socket time constant down by
10x and the job durations up by 10x keeps both inequalities comfortable
(40-80 ms jobs vs 3 s sink constant vs 20+ s horizon) and leaves every
steady-state temperature unchanged, so the scheduler ranking the paper
reports is preserved; only absolute job counts differ.
"""

from __future__ import annotations

from .parameters import SimulationParameters


def paper_faithful() -> SimulationParameters:
    """Exact Table III parameters: 30 minutes, 30 s sink constant."""
    return SimulationParameters()


def scaled(
    sim_time_s: float = 24.0,
    warmup_s: float = 8.0,
    seed: int = 0,
) -> SimulationParameters:
    """Scaled parameters for full sweeps on a laptop.

    Socket time constant 3 s (10x faster thermals), job durations 10x
    longer (10x fewer jobs at equal load), 1 ms power manager.
    """
    return SimulationParameters(
        sim_time_s=sim_time_s,
        warmup_s=warmup_s,
        socket_tau_s=3.0,
        duration_scale=10.0,
        seed=seed,
    )


def smoke(seed: int = 0) -> SimulationParameters:
    """Minimal parameters for unit tests: a few simulated seconds."""
    return SimulationParameters(
        sim_time_s=3.0,
        warmup_s=0.5,
        socket_tau_s=1.0,
        duration_scale=20.0,
        power_manager_interval_s=0.002,
        seed=seed,
    )

"""Summarise a telemetry directory: ``python -m repro.metrics.obs_report``.

Turns the raw observability artifacts of a run or sweep — JSONL event
logs, provenance manifests, embedded profiles — into a compact digest:
per-log event counts and simulation spans, scheduling activity
(placements, migrations, evictions), thermal/DVFS incidents, sweep
harness health (cache hits, retries, timeouts), and the aggregated
per-component profile table across every profiled run.

Usage::

    python -m repro.metrics.obs_report runs/telemetry
    python -m repro.metrics.obs_report runs/telemetry --json

The module is read-only over the artifact directory and tolerant of a
truncated final line per log (a killed run is exactly when you want a
report), but raises :class:`~repro.errors.ObservabilityError` on real
interior corruption.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from ..errors import ObservabilityError
from ..obs.manifest import MANIFEST_SUFFIX, RunManifest
from ..obs.profiler import RunProfile
from ..obs.writer import iter_events


@dataclass
class RunDigest:
    """Summary of one JSONL event log.

    Attributes:
        name: Log file name (without directory).
        n_events: Total events parsed.
        by_type: Event counts per schema type.
        span_s: Simulation-time span covered by timestamped events
            (0.0 when the log has no per-step events).
        truncated: Whether the log ended in a partial line (the
            writing process was killed mid-flush).
        batching: Micro-batching digest summed over the log's
            ``fleet_batch`` events (``n_batches``,
            ``n_batched_queries``, ``max_batch_size``, ``warm_hits``,
            ``warm_misses``), or ``None`` when the log has none.
    """

    name: str
    n_events: int
    by_type: Dict[str, int]
    span_s: float
    truncated: bool
    batching: Optional[Dict[str, int]] = None


@dataclass
class ObsReport:
    """The aggregated digest of one telemetry directory.

    Attributes:
        directory: The directory summarised.
        runs: One :class:`RunDigest` per event log, sorted by name.
        totals: Event counts per type, summed over every log.
        manifests: Manifest count found beside the logs.
        schedulers: Distinct scheduler names seen in manifests and
            ``run_start`` events.
        profile: Per-component accounting summed across every profiled
            run's manifest, or ``None`` when nothing was profiled.
        batching: Micro-batching digest summed across every log's
            ``fleet_batch`` events, or ``None`` when no log batched.
    """

    directory: str
    runs: List[RunDigest] = field(default_factory=list)
    totals: Dict[str, int] = field(default_factory=dict)
    manifests: int = 0
    schedulers: List[str] = field(default_factory=list)
    profile: Optional[RunProfile] = None
    batching: Optional[Dict[str, int]] = None

    def to_dict(self) -> dict:
        return {
            "directory": self.directory,
            "runs": [
                {
                    "name": run.name,
                    "n_events": run.n_events,
                    "by_type": dict(run.by_type),
                    "span_s": run.span_s,
                    "truncated": run.truncated,
                    "batching": (
                        dict(run.batching) if run.batching else None
                    ),
                }
                for run in self.runs
            ],
            "totals": dict(self.totals),
            "manifests": self.manifests,
            "schedulers": list(self.schedulers),
            "profile": self.profile.to_dict() if self.profile else None,
            "batching": dict(self.batching) if self.batching else None,
        }


def _digest_log(path: Path) -> RunDigest:
    by_type: Counter = Counter()
    t_min = float("inf")
    t_max = float("-inf")
    truncated = False
    try:
        events = list(iter_events(path, strict=True, validate=True))
    except ObservabilityError:
        # Retry tolerating a truncated tail; interior corruption (or a
        # schema violation) re-raises from here and fails the report.
        events = list(iter_events(path, strict=False, validate=True))
        truncated = True
    batching: Counter = Counter()
    for event in events:
        by_type[event["type"]] += 1
        t = event.get("t")
        if isinstance(t, (int, float)):
            t_min = min(t_min, float(t))
            t_max = max(t_max, float(t))
        if event["type"] == "fleet_batch":
            size = int(event.get("size", 0))
            batching["n_batches"] += 1
            batching["n_batched_queries"] += size
            batching["max_batch_size"] = max(
                batching["max_batch_size"], size
            )
            batching["warm_hits"] += int(event.get("warm_hits", 0))
            batching["warm_misses"] += int(event.get("warm_misses", 0))
    span = (t_max - t_min) if t_max >= t_min else 0.0
    return RunDigest(
        name=path.name,
        n_events=len(events),
        by_type=dict(by_type),
        span_s=span,
        truncated=truncated,
        batching=dict(batching) if batching else None,
    )


def _merge_profiles(profiles: List[RunProfile]) -> Optional[RunProfile]:
    """Sum per-component (and per-bucket) accounting across runs."""
    if not profiles:
        return None
    totals: "Dict[str, List[float]]" = {}
    order: List[str] = []
    bucket_totals: "Dict[str, List[float]]" = {}
    bucket_order: List[str] = []
    elapsed = 0.0
    steps = 0
    for profile in profiles:
        elapsed += profile.engine_elapsed_s
        steps += profile.n_steps
        for entry in profile.components:
            if entry.name not in totals:
                totals[entry.name] = [0, 0.0]
                order.append(entry.name)
            totals[entry.name][0] += entry.calls
            totals[entry.name][1] += entry.total_s
        for entry in profile.buckets:
            if entry.name not in bucket_totals:
                bucket_totals[entry.name] = [0, 0.0]
                bucket_order.append(entry.name)
            bucket_totals[entry.name][0] += entry.calls
            bucket_totals[entry.name][1] += entry.total_s
    from ..obs.profiler import ComponentProfile

    return RunProfile(
        engine_elapsed_s=elapsed,
        n_steps=steps,
        components=tuple(
            ComponentProfile(
                name=name,
                calls=int(totals[name][0]),
                total_s=float(totals[name][1]),
            )
            for name in order
        ),
        buckets=tuple(
            ComponentProfile(
                name=name,
                calls=int(bucket_totals[name][0]),
                total_s=float(bucket_totals[name][1]),
            )
            for name in bucket_order
        ),
    )


def obs_report(directory) -> ObsReport:
    """Build the digest of one telemetry directory.

    Raises:
        ObservabilityError: if the directory does not exist, holds no
            telemetry artifacts, or any log is corrupt beyond a
            truncated final line.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise ObservabilityError(
            f"telemetry directory {directory} does not exist"
        )
    logs = sorted(directory.rglob("*.jsonl"))
    manifest_paths = sorted(directory.rglob(f"*{MANIFEST_SUFFIX}"))
    if not logs and not manifest_paths:
        raise ObservabilityError(
            f"no telemetry artifacts under {directory}"
        )
    report = ObsReport(directory=str(directory))
    totals: Counter = Counter()
    schedulers = set()
    profiles: List[RunProfile] = []
    for path in logs:
        digest = _digest_log(path)
        report.runs.append(digest)
        totals.update(digest.by_type)
    for path in manifest_paths:
        manifest = RunManifest.read(path)
        report.manifests += 1
        schedulers.add(manifest.scheduler)
        if manifest.profile is not None:
            profiles.append(RunProfile.from_dict(manifest.profile))
    report.totals = dict(totals)
    report.schedulers = sorted(schedulers)
    report.profile = _merge_profiles(profiles)
    batching: Counter = Counter()
    for run in report.runs:
        if not run.batching:
            continue
        for key, value in run.batching.items():
            if key == "max_batch_size":
                batching[key] = max(batching[key], value)
            else:
                batching[key] += value
    report.batching = dict(batching) if batching else None
    return report


def render(report: ObsReport) -> str:
    """A human-readable report."""
    lines = [f"telemetry under {report.directory}"]
    lines.append(
        f"  {len(report.runs)} event log(s), "
        f"{sum(run.n_events for run in report.runs)} event(s), "
        f"{report.manifests} manifest(s)"
    )
    if report.schedulers:
        lines.append(f"  schedulers: {', '.join(report.schedulers)}")
    if report.totals:
        lines.append("  events by type:")
        for name in sorted(report.totals):
            lines.append(f"    {name:18s} {report.totals[name]}")
    truncated = [run.name for run in report.runs if run.truncated]
    if truncated:
        lines.append(
            f"  truncated (killed mid-write): {', '.join(truncated)}"
        )
    if report.batching:
        b = report.batching
        n = b.get("n_batches", 0)
        queries = b.get("n_batched_queries", 0)
        mean = queries / n if n else 0.0
        lines.append(
            f"  fleet batching: {n} batch(es), {queries} member "
            f"quer(ies) (mean {mean:.2f}/batch, "
            f"max {b.get('max_batch_size', 0)}), warm cache "
            f"{b.get('warm_hits', 0)} hit(s) / "
            f"{b.get('warm_misses', 0)} miss(es)"
        )
    if report.profile is not None:
        lines.append("  aggregate profile:")
        for row in report.profile.render().splitlines():
            lines.append(f"    {row}")
    return "\n".join(lines)


def main(argv: "List[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.metrics.obs_report",
        description="Summarise a telemetry artifact directory.",
    )
    parser.add_argument("directory", help="telemetry directory")
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the digest as JSON instead of text",
    )
    args = parser.parse_args(argv)
    try:
        report = obs_report(args.directory)
    except ObservabilityError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(render(report))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())

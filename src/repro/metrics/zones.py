"""Zone-level behaviour metrics (paper Figure 13).

Figure 13 reports, for each scheduling scheme, the average operating
frequency (relative to 1900 MHz) and the share of total work performed
in three regions of the SUT: the front half (zones 1-3), the back half
(zones 4-6), and the even zones (2, 4, 6 — the ones with the better
30-fin heat sink).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.results import SimulationResult


@dataclass(frozen=True)
class ZoneReport:
    """Frequency and work-done split by server region.

    Attributes:
        front_freq: Busy-weighted relative frequency, front half.
        back_freq: Busy-weighted relative frequency, back half.
        even_freq: Busy-weighted relative frequency, even zones.
        front_work: Fraction of total work done in the front half.
        back_work: Fraction of total work done in the back half.
        even_work: Fraction of total work done in even zones.
    """

    front_freq: float
    back_freq: float
    even_freq: float
    front_work: float
    back_work: float
    even_work: float


def zone_report(result: SimulationResult) -> ZoneReport:
    """Compute the Figure 13 metrics for one run."""
    topology = result.topology
    front = topology.front_half_mask()
    back = ~front
    even = topology.even_zone_mask()
    return ZoneReport(
        front_freq=result.average_relative_frequency(front),
        back_freq=result.average_relative_frequency(back),
        even_freq=result.average_relative_frequency(even),
        front_work=result.work_fraction(front),
        back_work=result.work_fraction(back),
        even_work=result.work_fraction(even),
    )

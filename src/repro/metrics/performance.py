"""Performance metrics relative to a baseline run."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ReproError
from ..sim.results import SimulationResult


def relative_performance(
    result: SimulationResult, baseline: SimulationResult
) -> float:
    """Performance of ``result`` relative to ``baseline`` (Figure 14).

    Greater than 1 means ``result``'s jobs expanded less than the
    baseline's.  Both runs must have been driven with the identical job
    stream for the ratio to be meaningful.
    """
    return result.performance / baseline.performance


def relative_runtime_expansion(
    result: SimulationResult, baseline: SimulationResult
) -> float:
    """Average runtime expansion vs the baseline (Figure 11, lower wins)."""
    return result.mean_runtime_expansion / baseline.mean_runtime_expansion


@dataclass(frozen=True)
class ExpansionStats:
    """Distributional view of per-job runtime expansion.

    Attributes:
        mean: Mean expansion.
        p50: Median expansion.
        p95: 95th percentile expansion.
        p99: 99th percentile expansion.
        worst: Maximum expansion.
    """

    mean: float
    p50: float
    p95: float
    p99: float
    worst: float


def runtime_expansion_stats(result: SimulationResult) -> ExpansionStats:
    """Expansion distribution of one run.

    Raises:
        ReproError: if the run completed no jobs.
    """
    if not result.completed_jobs:
        raise ReproError("result has no completed jobs")
    expansions = np.array(
        [job.runtime_expansion for job in result.completed_jobs]
    )
    return _distribution(expansions)


def response_time_stats(result: SimulationResult) -> ExpansionStats:
    """Distribution of arrival-to-completion time over nominal duration.

    Unlike runtime expansion this *includes queueing delay*, so it
    diverges from expansion exactly when the system saturates — a
    useful overload indicator.

    Raises:
        ReproError: if the run completed no jobs.
    """
    if not result.completed_jobs:
        raise ReproError("result has no completed jobs")
    ratios = np.array(
        [
            job.response_time_s / job.nominal_duration_s
            for job in result.completed_jobs
        ]
    )
    return _distribution(ratios)


def _distribution(values: np.ndarray) -> ExpansionStats:
    return ExpansionStats(
        mean=float(values.mean()),
        p50=float(np.percentile(values, 50)),
        p95=float(np.percentile(values, 95)),
        p99=float(np.percentile(values, 99)),
        worst=float(values.max()),
    )

"""Energy and energy-delay metrics (Figure 15)."""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.results import SimulationResult


def relative_ed2(
    result: SimulationResult, baseline: SimulationResult
) -> float:
    """ED^2 of ``result`` normalised to ``baseline`` (Figure 15).

    Below 1 means the run is more energy-delay efficient than the
    baseline.
    """
    return result.ed2_j_s2 / baseline.ed2_j_s2


@dataclass(frozen=True)
class EnergySummary:
    """Energy view of one run.

    Attributes:
        energy_j: Total energy over the measurement window, J.
        average_power_w: Mean server power, W.
        energy_per_job_j: Energy divided by completed job count, J.
        ed2: Raw energy-delay-squared product.
    """

    energy_j: float
    average_power_w: float
    energy_per_job_j: float
    ed2: float


def energy_summary(result: SimulationResult) -> EnergySummary:
    """Summarise the energy behaviour of a run."""
    jobs = max(result.n_jobs_completed, 1)
    return EnergySummary(
        energy_j=result.energy_j,
        average_power_w=result.average_power_w,
        energy_per_job_j=result.energy_j / jobs,
        ed2=result.ed2_j_s2,
    )

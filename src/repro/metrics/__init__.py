"""Derived metrics: performance, energy, zone behaviour, statistics."""

from .performance import (
    relative_performance,
    runtime_expansion_stats,
    response_time_stats,
    ExpansionStats,
)
from .energy import relative_ed2, energy_summary, EnergySummary
from .zones import zone_report, ZoneReport
from .stats import coefficient_of_variation, summarize
from .robustness import (
    FaultImpactReport,
    RobustnessReport,
    fault_impact_report,
    most_resilient,
    most_robust,
    robustness_report,
)
from .obs_report import ObsReport, RunDigest, obs_report, render as render_obs_report

__all__ = [
    "relative_performance",
    "runtime_expansion_stats",
    "response_time_stats",
    "ExpansionStats",
    "relative_ed2",
    "energy_summary",
    "EnergySummary",
    "zone_report",
    "ZoneReport",
    "coefficient_of_variation",
    "summarize",
    "RobustnessReport",
    "robustness_report",
    "most_robust",
    "FaultImpactReport",
    "fault_impact_report",
    "most_resilient",
    "ObsReport",
    "RunDigest",
    "obs_report",
    "render_obs_report",
]

"""Small statistics helpers used across experiments."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ReproError


def coefficient_of_variation(values: Sequence[float]) -> float:
    """Standard deviation divided by the mean (Figure 5b / 6b metric).

    Raises:
        ReproError: for empty input or a zero mean.
    """
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise ReproError("cannot compute CoV of an empty sequence")
    mean = float(data.mean())
    if mean == 0:
        raise ReproError("CoV undefined for zero mean")
    return float(data.std()) / mean


@dataclass(frozen=True)
class Summary:
    """Five-number-style summary of a sample.

    Attributes:
        mean: Sample mean.
        std: Sample standard deviation (population convention).
        minimum: Smallest value.
        maximum: Largest value.
        count: Sample size.
    """

    mean: float
    std: float
    minimum: float
    maximum: float
    count: int


def summarize(values: Sequence[float]) -> Summary:
    """Summary statistics of a sample.

    Raises:
        ReproError: for empty input.
    """
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise ReproError("cannot summarize an empty sequence")
    return Summary(
        mean=float(data.mean()),
        std=float(data.std()),
        minimum=float(data.min()),
        maximum=float(data.max()),
        count=int(data.size),
    )

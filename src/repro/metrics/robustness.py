"""Robustness across load levels.

The paper's closing argument for CP is not just its average gain but
its *robustness*: "no existing scheme provides consistent performance
across all load levels... adaptive and load agnostic behavior is
important for server systems where system load can change constantly".
These metrics make that claim measurable: for each scheme, the
worst-case performance relative to the per-load best scheme (regret),
aggregated over the load axis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

from ..errors import ReproError


@dataclass(frozen=True)
class RobustnessReport:
    """Regret-based robustness of one scheme over a load sweep.

    Attributes:
        scheme: Scheme name.
        worst_regret: Largest shortfall versus the per-load best scheme
            (0 means the scheme is best at every load).
        mean_regret: Average shortfall across loads.
        wins: Number of loads at which the scheme is (tied) best.
    """

    scheme: str
    worst_regret: float
    mean_regret: float
    wins: int


def robustness_report(
    performance: Mapping[Tuple[str, float], float],
    schemes: Sequence[str],
    loads: Sequence[float],
    tie_tolerance: float = 0.005,
) -> Dict[str, RobustnessReport]:
    """Compute per-scheme robustness over a (scheme, load) grid.

    Args:
        performance: Performance values keyed by (scheme, load); any
            consistent scale works since only ratios matter.
        schemes: Schemes to report.
        loads: Load levels of the sweep.
        tie_tolerance: Relative slack within which a scheme counts as
            tied-best at a load.

    Raises:
        ReproError: if the grid is missing entries or empty.
    """
    if not schemes or not loads:
        raise ReproError("robustness needs >= 1 scheme and load")
    for scheme in schemes:
        for load in loads:
            if (scheme, load) not in performance:
                raise ReproError(
                    f"missing performance for ({scheme}, {load})"
                )
    best_at = {
        load: max(performance[(s, load)] for s in schemes)
        for load in loads
    }
    reports: Dict[str, RobustnessReport] = {}
    for scheme in schemes:
        regrets = [
            1.0 - performance[(scheme, load)] / best_at[load]
            for load in loads
        ]
        wins = sum(
            1
            for load in loads
            if performance[(scheme, load)]
            >= best_at[load] * (1.0 - tie_tolerance)
        )
        reports[scheme] = RobustnessReport(
            scheme=scheme,
            worst_regret=max(regrets),
            mean_regret=sum(regrets) / len(regrets),
            wins=wins,
        )
    return reports


def most_robust(
    reports: Mapping[str, RobustnessReport],
) -> str:
    """Scheme with the smallest worst-case regret.

    Raises:
        ReproError: for an empty report map.
    """
    if not reports:
        raise ReproError("no robustness reports given")
    return min(
        reports.values(), key=lambda r: (r.worst_regret, r.mean_regret)
    ).scheme

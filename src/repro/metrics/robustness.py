"""Robustness across load levels and under injected faults.

The paper's closing argument for CP is not just its average gain but
its *robustness*: "no existing scheme provides consistent performance
across all load levels... adaptive and load agnostic behavior is
important for server systems where system load can change constantly".
These metrics make that claim measurable: for each scheme, the
worst-case performance relative to the per-load best scheme (regret),
aggregated over the load axis.

The same argument extends to *component failures* — fans degrade,
sensors drift, sockets die — and a dense chassis amplifies them
through thermal coupling: one weak fan heats every downwind socket in
its lane.  :class:`FaultImpactReport` quantifies each scheme's
exposure by pairing a healthy run with a fault-injected run of the
identical workload (same seed, same arrivals), so the measured delta
is attributable to the fault alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

from ..errors import ReproError


@dataclass(frozen=True)
class RobustnessReport:
    """Regret-based robustness of one scheme over a load sweep.

    Attributes:
        scheme: Scheme name.
        worst_regret: Largest shortfall versus the per-load best scheme
            (0 means the scheme is best at every load).
        mean_regret: Average shortfall across loads.
        wins: Number of loads at which the scheme is (tied) best.
    """

    scheme: str
    worst_regret: float
    mean_regret: float
    wins: int


def robustness_report(
    performance: Mapping[Tuple[str, float], float],
    schemes: Sequence[str],
    loads: Sequence[float],
    tie_tolerance: float = 0.005,
) -> Dict[str, RobustnessReport]:
    """Compute per-scheme robustness over a (scheme, load) grid.

    Args:
        performance: Performance values keyed by (scheme, load); any
            consistent scale works since only ratios matter.
        schemes: Schemes to report.
        loads: Load levels of the sweep.
        tie_tolerance: Relative slack within which a scheme counts as
            tied-best at a load.

    Raises:
        ReproError: if the grid is missing entries or empty.
    """
    if not schemes or not loads:
        raise ReproError("robustness needs >= 1 scheme and load")
    for scheme in schemes:
        for load in loads:
            if (scheme, load) not in performance:
                raise ReproError(
                    f"missing performance for ({scheme}, {load})"
                )
    best_at = {
        load: max(performance[(s, load)] for s in schemes)
        for load in loads
    }
    reports: Dict[str, RobustnessReport] = {}
    for scheme in schemes:
        regrets = [
            1.0 - performance[(scheme, load)] / best_at[load]
            for load in loads
        ]
        wins = sum(
            1
            for load in loads
            if performance[(scheme, load)]
            >= best_at[load] * (1.0 - tie_tolerance)
        )
        reports[scheme] = RobustnessReport(
            scheme=scheme,
            worst_regret=max(regrets),
            mean_regret=sum(regrets) / len(regrets),
            wins=wins,
        )
    return reports


def most_robust(
    reports: Mapping[str, RobustnessReport],
) -> str:
    """Scheme with the smallest worst-case regret.

    Raises:
        ReproError: for an empty report map.
    """
    if not reports:
        raise ReproError("no robustness reports given")
    return min(
        reports.values(), key=lambda r: (r.worst_regret, r.mean_regret)
    ).scheme


@dataclass(frozen=True)
class FaultImpactReport:
    """Performance cost of one fault scenario for one scheme.

    All quantities compare a fault-injected run against a healthy run
    of the *identical* workload, so the deltas are attributable to the
    fault alone.

    Attributes:
        scheme: Scheme name.
        healthy_performance: Performance score of the fault-free run.
        faulted_performance: Performance score of the faulted run.
        fault_regret: Fractional performance lost to the fault
            (``1 - faulted / healthy``; 0 means the scheme fully
            absorbed the fault, negative means it got lucky).
        downwind_freq_loss: Drop in busy-time-weighted relative
            frequency over the downwind sockets (those thermally behind
            the faulted component); ``nan`` if the mask was never busy
            in either run.
    """

    scheme: str
    healthy_performance: float
    faulted_performance: float
    fault_regret: float
    downwind_freq_loss: float


def fault_impact_report(
    scheme: str,
    healthy,
    faulted,
    downwind_mask=None,
) -> FaultImpactReport:
    """Pair a healthy and a faulted run of one scheme into a report.

    Args:
        scheme: Scheme name for the report.
        healthy: :class:`~repro.sim.results.SimulationResult` of the
            fault-free run.
        faulted: Result of the fault-injected run (same topology,
            parameters and seed).
        downwind_mask: Optional boolean socket mask selecting the
            sockets thermally downwind of the faulted component; the
            report's frequency-loss column covers only them.

    Raises:
        ReproError: if healthy performance is not positive.
    """
    healthy_perf = healthy.performance
    faulted_perf = faulted.performance
    if healthy_perf <= 0:
        raise ReproError("healthy performance must be positive")
    loss = float("nan")
    if downwind_mask is not None:
        before = healthy.average_relative_frequency(downwind_mask)
        after = faulted.average_relative_frequency(downwind_mask)
        loss = before - after
    return FaultImpactReport(
        scheme=scheme,
        healthy_performance=healthy_perf,
        faulted_performance=faulted_perf,
        fault_regret=1.0 - faulted_perf / healthy_perf,
        downwind_freq_loss=loss,
    )


def most_resilient(
    reports: Mapping[str, FaultImpactReport],
) -> str:
    """Scheme losing the least performance to the fault scenario.

    Raises:
        ReproError: for an empty report map.
    """
    if not reports:
        raise ReproError("no fault impact reports given")
    return min(
        reports.values(),
        key=lambda r: (r.fault_regret, -r.faulted_performance),
    ).scheme

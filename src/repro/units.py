"""Unit conversions and physical constants used throughout the library.

The central relation is the standardized total cooling requirement from
the first law of thermodynamics for air (the "Sunon formula" the paper
cites): the airflow needed to remove ``P`` watts with an air temperature
rise of ``dT`` degrees Celsius is::

    CFM = AIR_HEATING_CONSTANT * P / dT

with ``AIR_HEATING_CONSTANT ~= 1.76 CFM*degC/W`` at sea level.  The paper's
Table II is reproduced exactly by this constant (208 W -> 18.30 CFM at
dT = 20 C, 588 W -> 51.74 CFM, ...).
"""

from __future__ import annotations

from .errors import ThermalModelError

#: First-law air-heating constant, in CFM * degC / W.  Derived from air
#: density ~1.19 kg/m^3 and specific heat ~1006 J/(kg K) at sea level:
#: 1 / (rho * cp) in (m^3/s * K / W) converted to CFM.
AIR_HEATING_CONSTANT = 1.76

#: Cubic feet per minute -> cubic metres per second.
CFM_TO_M3S = 0.000471947

#: Air density at sea level, kg/m^3.
AIR_DENSITY = 1.19

#: Specific heat capacity of air, J/(kg K).
AIR_SPECIFIC_HEAT = 1006.0

#: One rack unit, in metres.
RACK_UNIT_M = 0.04445

#: One inch, in metres.
INCH_M = 0.0254


def cfm_to_m3s(cfm: float) -> float:
    """Convert a volumetric flow from CFM to cubic metres per second."""
    return cfm * CFM_TO_M3S


def m3s_to_cfm(m3s: float) -> float:
    """Convert a volumetric flow from cubic metres per second to CFM."""
    return m3s / CFM_TO_M3S


def airflow_for_power(power_w: float, delta_t_c: float) -> float:
    """Airflow (CFM) required to remove ``power_w`` with a ``delta_t_c`` rise.

    This is the standardized total cooling requirements formulation the
    paper uses to build Table II.

    Raises:
        ThermalModelError: if ``power_w`` is negative or ``delta_t_c`` is
            not strictly positive.
    """
    if power_w < 0:
        raise ThermalModelError(f"power must be non-negative, got {power_w}")
    if delta_t_c <= 0:
        raise ThermalModelError(
            f"temperature rise must be positive, got {delta_t_c}"
        )
    return AIR_HEATING_CONSTANT * power_w / delta_t_c


def air_temperature_rise(power_w: float, cfm: float) -> float:
    """Temperature rise (degC) of ``cfm`` of air absorbing ``power_w`` watts.

    Inverse of :func:`airflow_for_power`.

    Raises:
        ThermalModelError: if ``power_w`` is negative or ``cfm`` is not
            strictly positive.
    """
    if power_w < 0:
        raise ThermalModelError(f"power must be non-negative, got {power_w}")
    if cfm <= 0:
        raise ThermalModelError(f"airflow must be positive, got {cfm}")
    return AIR_HEATING_CONSTANT * power_w / cfm


def celsius_to_kelvin(celsius: float) -> float:
    """Convert a temperature from Celsius to Kelvin."""
    return celsius + 273.15


def kelvin_to_celsius(kelvin: float) -> float:
    """Convert a temperature from Kelvin to Celsius."""
    return kelvin - 273.15


def mhz_to_ghz(mhz: float) -> float:
    """Convert a frequency from MHz to GHz."""
    return mhz / 1000.0


def watts_per_u(total_power_w: float, height_u: float) -> float:
    """Power density in watts per rack unit.

    Raises:
        ThermalModelError: if ``height_u`` is not strictly positive.
    """
    if height_u <= 0:
        raise ThermalModelError(f"height must be positive, got {height_u}")
    return total_power_w / height_u


def sockets_per_u(total_sockets: int, height_u: float) -> float:
    """Socket density in sockets per rack unit.

    Raises:
        ThermalModelError: if ``height_u`` is not strictly positive.
    """
    if height_u <= 0:
        raise ThermalModelError(f"height must be positive, got {height_u}")
    return total_sockets / height_u

"""Room-scale datacenter layer: CRAC + heat recirculation + co-control.

The source paper stops at the chassis inlet.  This package closes the
room loop around it: multiple heterogeneous Table-I chassis, a
MinHR-style heat-recirculation matrix, the CRAC supply temperature as
a controlled input (``inlet = T_crac + D @ P_exhaust``), a fixed-point
solver for the coupled room equilibrium, thermal-aware room placement
baselines, and CRAC-setpoint co-optimization of sustainable load —
the formulations of Sun et al. (arXiv 1410.3104) and Van Damme et al.
(arXiv 1611.00522).  See ``docs/architecture.md`` §13.
"""

from .capacity import (
    CracSetpointChoice,
    RoomDeratingPoint,
    RoomKey,
    max_sustainable_room_load,
    optimize_crac_setpoint,
    room_derating_curve,
    room_solve_key,
    solve_room_cached,
)
from .invariants import RoomInvariantAuditor, RoomInvariantViolation
from .model import (
    DEFAULT_DIVERGENCE_LIMIT_C,
    DEFAULT_MAX_ITERATIONS,
    DEFAULT_TOLERANCE_C,
    ROOM_SOLVE_MODES,
    Room,
    RoomSolution,
    solve_room,
)
from .placement import ROOM_PLACEMENTS, place_room_load
from .recirculation import (
    RecirculationMatrix,
    downwind_recirculation,
    row_layout_recirculation,
    uniform_recirculation,
    zero_recirculation,
)

__all__ = [
    "CracSetpointChoice",
    "DEFAULT_DIVERGENCE_LIMIT_C",
    "DEFAULT_MAX_ITERATIONS",
    "DEFAULT_TOLERANCE_C",
    "ROOM_PLACEMENTS",
    "ROOM_SOLVE_MODES",
    "RecirculationMatrix",
    "Room",
    "RoomDeratingPoint",
    "RoomInvariantAuditor",
    "RoomInvariantViolation",
    "RoomKey",
    "RoomSolution",
    "downwind_recirculation",
    "max_sustainable_room_load",
    "optimize_crac_setpoint",
    "place_room_load",
    "room_derating_curve",
    "room_solve_key",
    "solve_room",
    "solve_room_cached",
    "uniform_recirculation",
    "row_layout_recirculation",
    "zero_recirculation",
]

"""Room-level capacity planning: sustainable load vs CRAC setpoint.

Extends the chassis-level planner (:mod:`repro.analysis.capacity`) one
layer up: instead of asking how much uniform load *one box* sustains at
a fixed inlet, these utilities ask how much load *a room of coupled
boxes* sustains when the inlets themselves are part of the solution —
``inlet = T_crac + D @ P_exhaust`` — and the operator's knob is the
CRAC supply temperature (Van Damme et al., arXiv 1611.00522 frames
exactly this joint placement + cooling-setpoint problem).

Room solves memoise into the process-wide sweep cache
(:data:`repro.sim.parallel.shared_cache`) under keys built by
:func:`repro.sim.parallel.config_key` with the *room inputs* — the
room fingerprint (chassis mix + recirculation matrix), the CRAC
setpoint and the placement vector — folded into the digest, so a room
sweep can never alias a chassis-only cache entry
(``tests/test_room_cache.py`` pins the collision behaviour).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..analysis.capacity import (
    UTILIZATION_TOLERANCE,
    sustained_dynamic_power_w,
)
from ..config.presets import scaled
from ..errors import RoomError
from ..sim.parallel import config_key, shared_cache
from ..workloads.benchmark import BenchmarkSet
from .model import Room, RoomSolution, _topology_for, solve_room
from .placement import place_room_load


@dataclass(frozen=True)
class RoomKey:
    """Room-layer inputs that join a sweep-cache key.

    Passed as ``config_key(..., room=...)``; :meth:`token` is the
    digest contribution.  Carries everything the chassis-level key
    cannot see: the room fingerprint (chassis mix + recirculation
    coefficients), the CRAC setpoint, and the exact per-chassis
    placement the solve ran under.

    Attributes:
        fingerprint: :meth:`Room.fingerprint` of the room.
        crac_supply_c: CRAC supply temperature of the solve, degC.
        detail: Extra distinguishing content (placement vector digest,
            solver mode, seed).
    """

    fingerprint: str
    crac_supply_c: float
    detail: str = ""

    def token(self) -> bytes:
        return (
            f"{self.fingerprint}|crac:{self.crac_supply_c!r}|"
            f"{self.detail}"
        ).encode()


def room_solve_key(
    room: Room,
    utilization: np.ndarray,
    dyn_max_w: np.ndarray,
    crac_supply_c: float,
    seed: int = 0,
    backend: str = "numpy",
) -> str:
    """The shared-cache key for one fully specified room solve.

    Built on :func:`~repro.sim.parallel.config_key` over the lead
    chassis' topology and the shared parameter set, with the room
    inputs joined through :class:`RoomKey` — distinct from every
    chassis-only key by construction.
    """
    placement_digest = hashlib.sha256()
    placement_digest.update(
        np.ascontiguousarray(utilization, dtype=float).tobytes()
    )
    placement_digest.update(
        np.ascontiguousarray(dyn_max_w, dtype=float).tobytes()
    )
    detail = f"seed:{seed}|placement:{placement_digest.hexdigest()}"
    return config_key(
        _topology_for(room.chassis[0]),
        scaled(seed=seed),
        "room",
        BenchmarkSet.COMPUTATION,
        float(np.mean(utilization)),
        backend=backend,
        room=RoomKey(
            fingerprint=room.fingerprint(),
            crac_supply_c=float(crac_supply_c),
            detail=detail,
        ),
    )


def solve_room_cached(
    room: Room,
    utilization,
    dyn_max_w,
    crac_supply_c: float,
    seed: int = 0,
    mode: str = "batched",
    backend=None,
    use_cache: bool = True,
    emit=None,
    **solve_kwargs,
) -> RoomSolution:
    """A :func:`~repro.room.model.solve_room` with shared-cache memoing.

    The capacity bisections below re-probe identical operating points
    across curve points and repeated experiment runs; the cache makes
    those free.  Cached solutions are keyed on the full room inputs
    (see :func:`room_solve_key`), never aliasing chassis sweep results.
    """
    from ..backend import get_backend

    backend_name = get_backend(backend).name
    util = np.asarray(utilization, dtype=float)
    if util.ndim == 0:
        util = np.full(room.n_chassis, float(util))
    dyn = np.asarray(dyn_max_w, dtype=float)
    if dyn.ndim == 0:
        dyn = np.full(room.n_chassis, float(dyn))
    key = room_solve_key(
        room, util, dyn, crac_supply_c, seed=seed, backend=backend_name
    )
    if use_cache:
        cached = shared_cache.get(key)
        if cached is not None:
            return cached
    solution = solve_room(
        room,
        util,
        dyn,
        crac_supply_c,
        seed=seed,
        mode=mode,
        backend=backend,
        emit=emit,
        **solve_kwargs,
    )
    if use_cache:
        shared_cache.put(key, solution)
    return solution


def max_sustainable_room_load(
    room: Room,
    crac_supply_c: float,
    placement: str = "paper",
    benchmark_set: BenchmarkSet = BenchmarkSet.COMPUTATION,
    limit_c: Optional[float] = None,
    seed: int = 0,
    mode: str = "batched",
    backend=None,
    use_cache: bool = True,
    emit=None,
) -> float:
    """Largest room utilisation with every steady chip under the limit.

    The room analogue of :func:`~repro.analysis.capacity.
    max_sustainable_utilization`: bisection over the *room* utilisation
    axis, where each probe places the load under ``placement``, solves
    the recirculation-coupled equilibrium, and checks the hottest chip
    in the room.

    Args:
        room: The chassis mix and recirculation coupling.
        crac_supply_c: CRAC supply temperature, degC.
        placement: A policy name from
            :data:`~repro.room.placement.ROOM_PLACEMENTS`.
        benchmark_set: Workload whose sustained power is applied.
        limit_c: Temperature ceiling; defaults to the DVFS limit of
            the shared parameter set.
        seed: Parameter seed.
        mode: Chassis evaluation mode (``"batched"`` / ``"serial"``).
        backend: Array backend for the batched path.
        use_cache: Memoise probes into the shared sweep cache.
        emit: Optional telemetry sink threaded to every room solve.

    Returns:
        Room utilisation in [0, 1]; 1.0 means the limit never binds,
        0.0 means even the idle room violates it.

    Raises:
        RoomConvergenceError: when any probe's fixed point diverges —
            an unsustainable room configuration is reported loudly,
            not as a silently clipped curve.
    """
    params = scaled(seed=seed)
    ceiling = params.temperature_limit_c if limit_c is None else limit_c
    dynamic = sustained_dynamic_power_w(benchmark_set)

    def hottest(room_util: float) -> float:
        util = place_room_load(
            room,
            placement,
            room_util,
            crac_supply_c=crac_supply_c,
            dyn_max_w=dynamic,
            seed=seed,
            mode=mode,
            backend=backend,
        )
        solution = solve_room_cached(
            room,
            util,
            dynamic,
            crac_supply_c,
            seed=seed,
            mode=mode,
            backend=backend,
            use_cache=use_cache,
            emit=emit,
        )
        return float(solution.max_chip_c.max())

    if hottest(0.0) > ceiling:
        return 0.0
    if hottest(1.0) <= ceiling:
        return 1.0
    low, high = 0.0, 1.0
    while high - low > UTILIZATION_TOLERANCE:
        mid = (low + high) / 2.0
        if hottest(mid) <= ceiling:
            low = mid
        else:
            high = mid
    return low


@dataclass(frozen=True)
class RoomDeratingPoint:
    """Sustainable room load at one CRAC setpoint.

    Attributes:
        crac_supply_c: CRAC supply temperature, degC.
        max_utilization: Largest sustainable room utilisation.
    """

    crac_supply_c: float
    max_utilization: float


def room_derating_curve(
    room: Room,
    crac_setpoints_c: Sequence[float],
    placement: str = "paper",
    benchmark_set: BenchmarkSet = BenchmarkSet.COMPUTATION,
    limit_c: Optional[float] = None,
    seed: int = 0,
    mode: str = "batched",
    backend=None,
    use_cache: bool = True,
    emit=None,
) -> List[RoomDeratingPoint]:
    """Sustainable room load as a function of CRAC supply temperature.

    The room-level sustainable-load curve — the paper's chassis-inlet
    derating curve with recirculated exhaust in the loop.

    Raises:
        RoomError: for an empty setpoint list.
    """
    if not crac_setpoints_c:
        raise RoomError("derating curve needs >= 1 CRAC setpoint")
    return [
        RoomDeratingPoint(
            crac_supply_c=float(setpoint),
            max_utilization=max_sustainable_room_load(
                room,
                float(setpoint),
                placement=placement,
                benchmark_set=benchmark_set,
                limit_c=limit_c,
                seed=seed,
                mode=mode,
                backend=backend,
                use_cache=use_cache,
                emit=emit,
            ),
        )
        for setpoint in crac_setpoints_c
    ]


@dataclass(frozen=True)
class CracSetpointChoice:
    """Outcome of the CRAC setpoint search.

    Attributes:
        crac_supply_c: The chosen supply temperature, degC.
        max_utilization: Sustainable room load at that setpoint.
        meets_target: Whether the target utilisation is sustainable
            there.
    """

    crac_supply_c: float
    max_utilization: float
    meets_target: bool


def optimize_crac_setpoint(
    room: Room,
    crac_setpoints_c: Sequence[float],
    target_utilization: float,
    placement: str = "paper",
    benchmark_set: BenchmarkSet = BenchmarkSet.COMPUTATION,
    limit_c: Optional[float] = None,
    seed: int = 0,
    mode: str = "batched",
    backend=None,
    use_cache: bool = True,
    emit=None,
) -> CracSetpointChoice:
    """The warmest CRAC setpoint that still sustains a target load.

    Joint cooling co-control: every degree of CRAC supply temperature
    is cooling energy saved, so among the candidate setpoints the
    search returns the *warmest* one whose sustainable load (subject
    to the redline ``limit_c``) still covers ``target_utilization``.
    When no setpoint sustains the target, the coldest candidate — the
    one with the largest sustainable load — is returned with
    ``meets_target=False`` so callers can derate explicitly rather
    than silently overcommit.

    Raises:
        RoomError: for an empty setpoint list or an out-of-range
            target.
    """
    if not crac_setpoints_c:
        raise RoomError("setpoint search needs >= 1 candidate")
    if not 0.0 <= target_utilization <= 1.0:
        raise RoomError("target utilisation must lie in [0, 1]")
    curve = room_derating_curve(
        room,
        crac_setpoints_c,
        placement=placement,
        benchmark_set=benchmark_set,
        limit_c=limit_c,
        seed=seed,
        mode=mode,
        backend=backend,
        use_cache=use_cache,
        emit=emit,
    )
    sustaining = [
        p for p in curve if p.max_utilization >= target_utilization
    ]
    if sustaining:
        best = max(sustaining, key=lambda p: p.crac_supply_c)
        return CracSetpointChoice(
            crac_supply_c=best.crac_supply_c,
            max_utilization=best.max_utilization,
            meets_target=True,
        )
    fallback = max(curve, key=lambda p: (p.max_utilization, -p.crac_supply_c))
    return CracSetpointChoice(
        crac_supply_c=fallback.crac_supply_c,
        max_utilization=fallback.max_utilization,
        meets_target=False,
    )

"""Thermal-aware room-level load placement policies.

Given a total room load (the fraction of all sockets that should be
busy), a placement policy decides *which chassis* absorb it.  Three
baselines span the literature the room layer reproduces:

- ``"paper"`` — the source paper's chassis-level view: no room
  awareness, every chassis runs the same uniform utilisation.  This is
  the control every room-aware policy is measured against.
- ``"coolest"`` — inlet-aware margin balancing: solve the uniform
  room once, recompute each chassis' thermal cap at its converged
  (recirculation-loaded) inlet, and allocate load proportional to
  those caps so the room reaches its redline everywhere at once (the
  inlet-oriented coolest-inlet-first family, made margin-aware).
- ``"minhr"`` — MinHR (Sun et al., arXiv 1410.3104): weight chassis
  inversely by how much heat one watt of their exhaust recirculates
  room-wide (column sums of the recirculation matrix), minimizing the
  total heat the CRAC must absorb twice.

Room-aware policies allocate *power-budget shares* proportional to
their weights — not greedy fill-to-capacity: in a density optimized
chassis, in-chassis coupling binds long before room recirculation, so
concentrating load would push a single box past its redline while the
rest of the room idles.  The weighted share is water-filled against
each chassis' *standalone* thermal cap (the utilisation where its own
steady chip field crosses the DVFS limit at an inlet equal to the CRAC
supply); demand the caps cannot absorb spills proportionally to the
remaining headroom, so the vector always conserves total demand and
the room solver — not the placement — decides that such a point is
unsustainable.  For a homogeneous room the weights tie and every
policy reduces to the paper's uniform baseline.

Policies return a per-chassis utilisation vector conserving total
demand: ``sum(util * sockets) == room_utilization * total_sockets``
(up to float rounding), each entry in [0, 1].
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from ..config.presets import scaled
from ..errors import RoomError
from ..sim.steady_state import uniform_load_field
from .model import Room, _topology_for, solve_room

PlacementFn = Callable[..., np.ndarray]

#: Bisection tolerance of the standalone per-chassis thermal cap.
CAP_TOLERANCE = 1e-3


def _standalone_caps(
    room: Room,
    inlets_c,
    dyn_max_w: float,
    seed: int,
) -> np.ndarray:
    """Per-chassis sustainable utilisation at the given inlets.

    A chassis loaded past the utilisation where its own steady chip
    field crosses the DVFS limit is thermally infeasible *regardless*
    of room placement — in-chassis coupling binds before recirculation
    does.  ``inlets_c`` is a scalar (every chassis at the CRAC supply,
    optimistic) or a per-chassis vector (e.g. the converged inlets of
    a room solve, recirculation-aware).
    """
    params = scaled(seed=seed)
    inlets = np.broadcast_to(
        np.asarray(inlets_c, dtype=float), (room.n_chassis,)
    )
    caps = np.empty(room.n_chassis)
    for i, spec in enumerate(room.chassis):
        topology = _topology_for(spec)
        adjusted = params.with_overrides(inlet_c=float(inlets[i]))
        ceiling = adjusted.temperature_limit_c

        def hottest(util: float) -> float:
            field = uniform_load_field(
                topology, adjusted, util, dyn_max_w
            )
            return float(field.chip_c.max())

        if hottest(1.0) <= ceiling:
            caps[i] = 1.0
        elif hottest(0.0) > ceiling:
            caps[i] = 0.0
        else:
            low, high = 0.0, 1.0
            while high - low > CAP_TOLERANCE:
                mid = (low + high) / 2.0
                if hottest(mid) <= ceiling:
                    low = mid
                else:
                    high = mid
            caps[i] = low
    return caps


def _weighted_fill(
    room: Room,
    weights: np.ndarray,
    room_utilization: float,
    caps: np.ndarray,
) -> np.ndarray:
    """Water-fill demand over chassis by weight, respecting caps.

    Each round grants every unsaturated chassis its weighted share of
    the remaining demand, clipped at the chassis' cap; clipping
    redistributes the excess to the still-unsaturated chassis in the
    next round (at most ``n_chassis`` rounds).  Demand beyond the
    total capped capacity spills proportionally to the remaining
    socket headroom so the vector stays demand-conserving.
    """
    sockets = room.sockets_per_chassis.astype(float)
    remaining = room_utilization * float(sockets.sum())
    cap_sockets = np.clip(caps, 0.0, 1.0) * sockets
    busy = np.zeros(room.n_chassis)
    share = np.maximum(np.asarray(weights, dtype=float), 0.0) * sockets
    for _ in range(room.n_chassis):
        open_ = busy < cap_sockets - 1e-12
        pool = float(share[open_].sum())
        if remaining <= 1e-12 or pool <= 0.0:
            break
        grant = np.where(open_, remaining * share / pool, 0.0)
        grant = np.minimum(grant, cap_sockets - busy)
        busy += grant
        remaining -= float(grant.sum())
    if remaining > 1e-12:
        headroom = sockets - busy
        total = float(headroom.sum())
        if total > 0.0:
            busy += remaining * headroom / total
    return busy / sockets


def _inverse_weights(pressure: np.ndarray) -> np.ndarray:
    """Turn a non-negative "thermal pressure" into placement weights.

    ``1 / (1 + pressure / mean)`` — smooth, scale-free, and exactly
    uniform when every chassis carries the same pressure (including
    the all-zero case), so homogeneous rooms reduce to the paper
    baseline.
    """
    pressure = np.maximum(np.asarray(pressure, dtype=float), 0.0)
    mean = float(pressure.mean())
    if mean <= 0.0:
        return np.ones_like(pressure)
    return 1.0 / (1.0 + pressure / mean)


def place_paper(
    room: Room, room_utilization: float, **_kwargs
) -> np.ndarray:
    """The paper's room-blind baseline: uniform utilisation everywhere."""
    return np.full(room.n_chassis, room_utilization)


def place_coolest_inlet(
    room: Room,
    room_utilization: float,
    crac_supply_c: float = 18.0,
    dyn_max_w: float = 0.0,
    seed: int = 0,
    mode: str = "batched",
    backend=None,
    **_kwargs,
) -> np.ndarray:
    """Balance thermal margin using the observed (recirculated) inlets.

    Solves the room once at the *uniform* allocation to observe each
    chassis' converged, recirculation-loaded inlet, recomputes the
    standalone caps at those inlets, and allocates load proportional
    to the caps: every chassis then carries the same fraction of its
    inlet-aware capacity, so the whole room reaches its redline
    simultaneously rather than wherever the warmest inlet sits.  This
    is the inlet-oriented (coolest-inlet-first) family made
    margin-aware — cooler inlet, more load.
    """
    uniform = solve_room(
        room,
        room_utilization,
        dyn_max_w,
        crac_supply_c,
        seed=seed,
        mode=mode,
        backend=backend,
    )
    caps = _standalone_caps(room, uniform.inlet_c, dyn_max_w, seed)
    return _weighted_fill(room, caps, room_utilization, caps)


def place_minhr(
    room: Room,
    room_utilization: float,
    crac_supply_c: float = 18.0,
    dyn_max_w: float = 0.0,
    seed: int = 0,
    **_kwargs,
) -> np.ndarray:
    """Bias load towards the chassis that recirculate the least heat.

    The pressure is each chassis' room-wide heat-recirculation
    contribution per watt of exhaust (Sun et al.'s MinHR ratio).
    """
    contribution = room.recirculation.hr_contribution()
    caps = _standalone_caps(room, crac_supply_c, dyn_max_w, seed)
    return _weighted_fill(
        room,
        _inverse_weights(contribution),
        room_utilization,
        caps,
    )


#: Registered room placement policies.
ROOM_PLACEMENTS: Dict[str, PlacementFn] = {
    "paper": place_paper,
    "coolest": place_coolest_inlet,
    "minhr": place_minhr,
}


def place_room_load(
    room: Room,
    policy: str,
    room_utilization: float,
    crac_supply_c: float = 18.0,
    dyn_max_w: float = 0.0,
    seed: int = 0,
    mode: str = "batched",
    backend=None,
) -> np.ndarray:
    """Distribute a total room load over chassis under one policy.

    Args:
        room: The room to place into.
        policy: A name from :data:`ROOM_PLACEMENTS`.
        room_utilization: Fraction of *all* room sockets busy, [0, 1].
        crac_supply_c: CRAC supply temperature (the inlet-aware policy
            solves the idle room at this setpoint).
        dyn_max_w: Busy dynamic power per socket, W (idle-room solve).
        seed: Parameter seed threaded to any internal room solve.
        mode: Chassis evaluation mode for internal solves.
        backend: Array backend for internal solves.

    Returns:
        Per-chassis utilisation vector, demand-conserving.

    Raises:
        RoomError: for unknown policies or out-of-range loads.
    """
    if not 0.0 <= room_utilization <= 1.0:
        raise RoomError("room utilisation must lie in [0, 1]")
    try:
        fn = ROOM_PLACEMENTS[policy]
    except KeyError as exc:
        known = ", ".join(sorted(ROOM_PLACEMENTS))
        raise RoomError(
            f"unknown room placement {policy!r}; known: {known}"
        ) from exc
    util = fn(
        room,
        room_utilization,
        crac_supply_c=crac_supply_c,
        dyn_max_w=dyn_max_w,
        seed=seed,
        mode=mode,
        backend=backend,
    )
    return np.clip(util, 0.0, 1.0)

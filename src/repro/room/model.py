"""The room model and its fixed-point thermal equilibrium solver.

A *room* composes heterogeneous chassis (Table-I configurations via
:class:`~repro.fleet.registry.ChassisSpec`) with a heat-recirculation
matrix and one controlled input — the CRAC supply temperature.  The
coupled equilibrium is a fixed point over the chassis inlets:

1. given inlets, every chassis settles to its own steady state (the
   chassis-level closed-form solver, unchanged);
2. given chassis exhaust powers, the room air sets the inlets:
   ``inlet = T_crac + D @ P_exhaust``.

The solver iterates (1)-(2) to convergence with an explicit tolerance,
and raises :class:`~repro.errors.RoomConvergenceError` — never returns
silent nonsense — when the loop gains exceed 1 (strong recirculation
against a leakage-heavy fleet), when residuals go non-finite, or when
the iteration budget runs out above tolerance.

Chassis steady states evaluate through either of two proven paths:

- ``mode="serial"`` — one :func:`~repro.sim.steady_state.
  solve_steady_state` call per chassis (the reference loop);
- ``mode="batched"`` (default) — chassis sharing a topology recipe are
  stacked into one :func:`~repro.sim.batched.evaluate_fleet`
  fleet-tensor call per iteration, each chassis a
  :class:`~repro.sim.batched.FleetPoint` with its inlet as the
  per-point override.  Under the numpy backend this path is
  bit-identical to the serial loop (see
  ``tests/test_room_differential.py``); under JAX it is
  epsilon-bounded.

A 1-chassis room with zero recirculation converges in a single
iteration to exactly the chassis-only steady state — bit for bit (the
fingerprint oracle in ``tests/test_room_goldens.py``).
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config.parameters import SimulationParameters
from ..config.presets import scaled
from ..errors import RoomConvergenceError, RoomError
from ..fleet.registry import ChassisSpec
from ..server.topology import ServerTopology
from ..sim.batched import FleetPoint, evaluate_fleet
from ..sim.steady_state import SteadyStateField, solve_steady_state
from .recirculation import RecirculationMatrix

#: Default convergence tolerance on the inlet fixed point, degC.
DEFAULT_TOLERANCE_C = 1e-6

#: Default iteration budget for the fixed-point loop.
DEFAULT_MAX_ITERATIONS = 60

#: Residual above which the solve is declared divergent outright, degC.
DEFAULT_DIVERGENCE_LIMIT_C = 1000.0

#: Chassis evaluation modes for one room iteration.
ROOM_SOLVE_MODES = ("batched", "serial")

#: Per-process cache of built chassis topologies, keyed by recipe.
_topology_cache: Dict[Tuple[int, int, int, int], ServerTopology] = {}


def _chassis_recipe(spec: ChassisSpec) -> Tuple[int, int, int, int]:
    """The geometry tuple that determines a chassis' topology."""
    return (
        spec.n_rows,
        spec.lanes_per_row,
        spec.chain_length,
        spec.sockets_per_cartridge_depth,
    )


def _topology_for(spec: ChassisSpec) -> ServerTopology:
    """The (cached) topology for one chassis spec."""
    recipe = _chassis_recipe(spec)
    topology = _topology_cache.get(recipe)
    if topology is None:
        topology = spec.build_topology()
        _topology_cache[recipe] = topology
    return topology


@dataclass(frozen=True)
class Room:
    """One datacenter room: chassis plus their recirculation coupling.

    Attributes:
        chassis: The chassis specs, in room position order (the order
            the recirculation matrix indexes).
        recirculation: The validated chassis-to-chassis
            heat-recirculation matrix; its dimension must equal the
            chassis count.
    """

    chassis: Tuple[ChassisSpec, ...]
    recirculation: RecirculationMatrix

    def __post_init__(self) -> None:
        object.__setattr__(self, "chassis", tuple(self.chassis))
        if not self.chassis:
            raise RoomError("a room needs at least one chassis")
        if self.recirculation.n_chassis != len(self.chassis):
            raise RoomError(
                f"recirculation matrix couples "
                f"{self.recirculation.n_chassis} chassis but the room "
                f"has {len(self.chassis)}"
            )
        seen = set()
        for spec in self.chassis:
            if spec.chassis_id in seen:
                raise RoomError(
                    f"duplicate chassis id {spec.chassis_id!r}"
                )
            seen.add(spec.chassis_id)

    @property
    def n_chassis(self) -> int:
        return len(self.chassis)

    @property
    def sockets_per_chassis(self) -> np.ndarray:
        """Socket count of each chassis, room order."""
        return np.array(
            [_topology_for(spec).n_sockets for spec in self.chassis]
        )

    @property
    def total_sockets(self) -> int:
        return int(self.sockets_per_chassis.sum())

    def permuted(self, order: Sequence[int]) -> "Room":
        """The same room with chassis relabelled by ``order``."""
        idx = list(order)
        if sorted(idx) != list(range(self.n_chassis)):
            raise RoomError(
                f"order must be a permutation of 0..{self.n_chassis - 1}"
            )
        return Room(
            chassis=tuple(self.chassis[i] for i in idx),
            recirculation=self.recirculation.permuted(idx),
        )

    def fingerprint(self) -> str:
        """SHA-256 over the chassis recipes and the recirculation matrix.

        Covers everything that shapes the room's thermal response —
        chassis geometry and the coupling coefficients — so two rooms
        share a fingerprint iff they are physically interchangeable.
        """
        digest = hashlib.sha256()
        for spec in self.chassis:
            digest.update(
                f"{spec.chassis_id}|{_chassis_recipe(spec)!r}".encode()
            )
        digest.update(b"|recirc:")
        digest.update(self.recirculation.fingerprint().encode())
        return digest.hexdigest()


@dataclass(frozen=True)
class RoomSolution:
    """Converged room thermal equilibrium.

    Attributes:
        crac_supply_c: The CRAC supply temperature of the solve, degC.
        utilization: Per-chassis uniform busy fraction applied.
        dyn_max_w: Per-chassis dynamic power while busy, W/socket.
        inlet_c: Converged chassis inlet temperatures, degC.
        exhaust_w: Converged chassis exhaust powers, W.
        fields: Per-chassis steady thermal fields (socket resolution).
        residuals_c: Max inlet residual of each fixed-point iteration.
    """

    crac_supply_c: float
    utilization: np.ndarray
    dyn_max_w: np.ndarray
    inlet_c: np.ndarray
    exhaust_w: np.ndarray
    fields: Tuple[SteadyStateField, ...]
    residuals_c: Tuple[float, ...]

    @property
    def n_chassis(self) -> int:
        return len(self.fields)

    @property
    def n_iterations(self) -> int:
        return len(self.residuals_c)

    @property
    def max_chip_c(self) -> np.ndarray:
        """Hottest chip temperature of each chassis, degC."""
        return np.array([float(f.chip_c.max()) for f in self.fields])

    @property
    def hottest_chassis(self) -> int:
        """Index of the chassis holding the room's hottest chip."""
        return int(np.argmax(self.max_chip_c))

    @property
    def total_power_w(self) -> float:
        """Total IT power leaving the room as heat, W."""
        return float(self.exhaust_w.sum())

    def fingerprint(self) -> str:
        """SHA-256 over every deterministic solution field.

        The raw IEEE-754 bytes of the inlets, exhausts and all four
        per-chassis field arrays — two solves match iff every bit
        matches (the room-level analogue of
        :func:`~repro.sim.fingerprint.result_fingerprint`).
        """
        digest = hashlib.sha256()

        def array(values: np.ndarray) -> None:
            digest.update(
                np.ascontiguousarray(values, dtype=float).tobytes()
            )

        digest.update(np.float64(self.crac_supply_c).tobytes())
        array(self.utilization)
        array(self.dyn_max_w)
        array(self.inlet_c)
        array(self.exhaust_w)
        for field in self.fields:
            array(field.power_w)
            array(field.ambient_c)
            array(field.sink_c)
            array(field.chip_c)
        return digest.hexdigest()


def _as_chassis_vector(room: Room, values, name: str) -> np.ndarray:
    """Broadcast a scalar or validate a per-chassis vector."""
    array = np.asarray(values, dtype=float)
    if array.ndim == 0:
        array = np.full(room.n_chassis, float(array))
    if array.shape != (room.n_chassis,):
        raise RoomError(
            f"expected {name} of shape ({room.n_chassis},), got "
            f"{array.shape}"
        )
    return array


def _solve_chassis_serial(
    room: Room,
    params: SimulationParameters,
    utilization: np.ndarray,
    dyn_max_w: np.ndarray,
    inlet_c: np.ndarray,
) -> List[SteadyStateField]:
    """One chassis-solve pass through the per-chassis reference loop."""
    fields = []
    for i, spec in enumerate(room.chassis):
        topology = _topology_for(spec)
        n = topology.n_sockets
        chassis_params = dataclasses.replace(
            params, inlet_c=float(inlet_c[i])
        )
        fields.append(
            solve_steady_state(
                topology,
                chassis_params,
                np.full(n, dyn_max_w[i]),
                np.full(n, utilization[i]),
            )
        )
    return fields


def _solve_chassis_batched(
    room: Room,
    params: SimulationParameters,
    utilization: np.ndarray,
    dyn_max_w: np.ndarray,
    inlet_c: np.ndarray,
    backend,
) -> List[SteadyStateField]:
    """One chassis-solve pass through the fleet-tensor evaluator.

    Chassis sharing a topology recipe stack into one
    :func:`~repro.sim.batched.evaluate_fleet` call, each as a
    :class:`~repro.sim.batched.FleetPoint` whose ``inlet_c`` override
    carries the room iteration's inlet.  Bit-identical to the serial
    loop under numpy (the batched evaluator's own oracle guarantees
    it per point).
    """
    groups: Dict[Tuple[int, int, int, int], List[int]] = {}
    for i, spec in enumerate(room.chassis):
        groups.setdefault(_chassis_recipe(spec), []).append(i)
    fields: List[Optional[SteadyStateField]] = [None] * room.n_chassis
    for recipe, indices in groups.items():
        topology = _topology_for(room.chassis[indices[0]])
        points = [
            FleetPoint(
                utilization=float(utilization[i]),
                dyn_max_w=float(dyn_max_w[i]),
                inlet_c=float(inlet_c[i]),
            )
            for i in indices
        ]
        result = evaluate_fleet(
            topology, params, points, window_steps=0, backend=backend
        )
        for k, i in enumerate(indices):
            fields[i] = result.field(k)
    return fields  # type: ignore[return-value]


def solve_room(
    room: Room,
    utilization,
    dyn_max_w,
    crac_supply_c: float,
    seed: int = 0,
    tolerance_c: float = DEFAULT_TOLERANCE_C,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    divergence_limit_c: float = DEFAULT_DIVERGENCE_LIMIT_C,
    mode: str = "batched",
    backend=None,
    emit: Optional[Callable[[dict], None]] = None,
) -> RoomSolution:
    """Iterate chassis steady states to the room thermal equilibrium.

    Args:
        room: The chassis mix and recirculation coupling.
        utilization: Per-chassis uniform busy fraction (scalar
            broadcasts), each in [0, 1].
        dyn_max_w: Per-chassis dynamic power while busy, W/socket
            (scalar broadcasts).
        crac_supply_c: CRAC supply (cold-aisle) temperature, degC —
            the room's controlled input.
        seed: Seed for the shared scaled parameter set.
        tolerance_c: Convergence tolerance on the max inlet residual.
        max_iterations: Fixed-point iteration budget.
        divergence_limit_c: Residual above which the solve aborts as
            divergent without spending the rest of the budget.
        mode: ``"batched"`` (fleet-tensor, default) or ``"serial"``
            (per-chassis reference loop); bit-identical under numpy.
        backend: Array backend for the batched path (name, instance or
            ``None`` for ``REPRO_BACKEND``/numpy).
        emit: Optional sink for ``room_*`` telemetry events (already
            validated dicts, e.g. ``JsonlWriter.emit``).

    Returns:
        The converged :class:`RoomSolution`.

    Raises:
        RoomError: for malformed inputs.
        RoomConvergenceError: when the fixed point diverges (residual
            growth past ``divergence_limit_c``, non-finite residuals,
            or three consecutive growing residuals an order of
            magnitude above the first) or the budget runs out above
            tolerance.
    """
    utilization = _as_chassis_vector(room, utilization, "utilization")
    dyn_max_w = _as_chassis_vector(room, dyn_max_w, "dyn_max_w")
    if ((utilization < 0) | (utilization > 1)).any():
        raise RoomError("utilisation must lie in [0, 1]")
    if (dyn_max_w < 0).any():
        raise RoomError("dynamic power must be non-negative")
    if tolerance_c <= 0:
        raise RoomError("tolerance must be positive")
    if max_iterations < 1:
        raise RoomError("max_iterations must be >= 1")
    if mode not in ROOM_SOLVE_MODES:
        raise RoomError(
            f"mode must be one of {ROOM_SOLVE_MODES}, got {mode!r}"
        )

    from ..obs.events import make_event

    def send(type_: str, **payload) -> None:
        if emit is not None:
            emit(make_event(type_, **payload))

    params = scaled(seed=seed)
    matrix = room.recirculation
    inlet = np.full(room.n_chassis, float(crac_supply_c))
    send(
        "room_solve_start",
        n_chassis=room.n_chassis,
        crac_supply_c=float(crac_supply_c),
        recirculation=matrix.fingerprint(),
    )
    residuals: List[float] = []
    fields: List[SteadyStateField] = []
    exhaust = np.zeros(room.n_chassis)

    def diverged(reason: str) -> RoomConvergenceError:
        # The event schema forbids non-finite floats; a non-finite
        # residual is already named in ``reason``.
        finite = [r for r in residuals if np.isfinite(r)]
        send(
            "room_diverged",
            n_iterations=len(residuals),
            residual_c=finite[-1] if finite else 0.0,
            reason=reason,
        )
        return RoomConvergenceError(residuals, tolerance_c, reason)

    for _ in range(max_iterations):
        if mode == "serial":
            fields = _solve_chassis_serial(
                room, params, utilization, dyn_max_w, inlet
            )
        else:
            fields = _solve_chassis_batched(
                room, params, utilization, dyn_max_w, inlet, backend
            )
        exhaust = np.array(
            [float(np.sum(field.power_w)) for field in fields]
        )
        target = crac_supply_c + matrix.inlet_rise(exhaust)
        residual = float(np.max(np.abs(target - inlet)))
        residuals.append(residual)
        hottest = float(max(f.chip_c.max() for f in fields))
        if not np.isfinite(residual) or not np.isfinite(hottest):
            raise diverged("non-finite inlet residual")
        send(
            "room_iteration",
            iteration=len(residuals),
            residual_c=residual,
            max_chip_c=hottest,
        )
        if residual > divergence_limit_c:
            raise diverged(
                f"residual exceeded the divergence limit "
                f"{divergence_limit_c:g} degC"
            )
        if (
            len(residuals) >= 4
            and residuals[-1] > residuals[-2] > residuals[-3]
            and residuals[-1] > 10.0 * residuals[0]
        ):
            raise diverged("residuals growing (loop gain above 1)")
        if residual <= tolerance_c:
            send(
                "room_converged",
                n_iterations=len(residuals),
                residual_c=residual,
                max_chip_c=hottest,
            )
            return RoomSolution(
                crac_supply_c=float(crac_supply_c),
                utilization=utilization,
                dyn_max_w=dyn_max_w,
                inlet_c=inlet,
                exhaust_w=exhaust,
                fields=tuple(fields),
                residuals_c=tuple(residuals),
            )
        inlet = target
    raise diverged("iteration budget exhausted above tolerance")

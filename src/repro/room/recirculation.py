"""Room heat-recirculation matrices (MinHR-style cross interference).

A density-optimized chassis does not exhaust into a void: some fraction
of every chassis' hot exhaust short-circuits the cold aisle and re-enters
chassis inlets before the CRAC can remove the heat.  Following the
cross-interference formulation of Sun et al. (arXiv 1410.3104) and the
joint placement + cooling model of Van Damme et al. (arXiv 1611.00522),
the room layer condenses that aerodynamics into a single matrix ``D``:

.. math::

    T_{inlet} = T_{crac} + D \\, P_{exhaust}

where ``D[i, j]`` is the inlet-temperature rise at chassis *i* per watt
of exhaust heat leaving chassis *j* (degC/W), absorbing the recirculated
air fraction and the air stream's heat capacity into one coefficient —
exactly how MinHR's measured HRF coefficients are used.  ``D`` is
time-invariant (room geometry does not move) and strictly non-negative
(recirculated exhaust can only heat an inlet).

The *row-stochastic bound* — every row sum strictly below 1 degC/W —
is a physical-sanity ceiling, not a sufficiency proof: each watt of
room exhaust may contribute less than a full degree to any single
inlet's rise.  Convergence of the room fixed point additionally
depends on how strongly chassis power reacts to inlet temperature
(leakage slope x sockets), so the solver still detects and reports
genuine divergence at runtime (:class:`~repro.errors.
RoomConvergenceError`) instead of trusting the bound.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import RoomError


@dataclass(frozen=True)
class RecirculationMatrix:
    """Validated chassis-to-chassis heat-recirculation coefficients.

    Attributes:
        matrix: ``(m, m)`` array; ``matrix[i, j]`` is the inlet rise at
            chassis ``i`` per watt of exhaust from chassis ``j``,
            degC/W.  Non-negative, finite, with every row sum strictly
            below 1.
    """

    matrix: np.ndarray

    def __post_init__(self) -> None:
        matrix = np.asarray(self.matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise RoomError(
                f"recirculation matrix must be square, got shape "
                f"{matrix.shape}"
            )
        if matrix.shape[0] < 1:
            raise RoomError("recirculation matrix needs >= 1 chassis")
        if not np.isfinite(matrix).all():
            raise RoomError("recirculation entries must be finite")
        if (matrix < 0).any():
            raise RoomError(
                "recirculation entries must be non-negative "
                "(exhaust can only heat an inlet)"
            )
        row_sums = matrix.sum(axis=1)
        if (row_sums >= 1.0).any():
            worst = int(np.argmax(row_sums))
            raise RoomError(
                f"recirculation row sums must stay below 1 degC/W; "
                f"row {worst} sums to {row_sums[worst]:.6g}"
            )
        matrix = np.ascontiguousarray(matrix)
        matrix.setflags(write=False)
        object.__setattr__(self, "matrix", matrix)

    @property
    def n_chassis(self) -> int:
        """Number of chassis the matrix couples."""
        return self.matrix.shape[0]

    @property
    def is_zero(self) -> bool:
        """True when no chassis influences any inlet (isolated room)."""
        return not self.matrix.any()

    def inlet_rise(self, exhaust_w: np.ndarray) -> np.ndarray:
        """Per-chassis inlet rise ``D @ P`` for an exhaust vector, degC."""
        exhaust = np.asarray(exhaust_w, dtype=float)
        if exhaust.shape != (self.n_chassis,):
            raise RoomError(
                f"expected exhaust of shape ({self.n_chassis},), got "
                f"{exhaust.shape}"
            )
        return self.matrix @ exhaust

    def hr_contribution(self) -> np.ndarray:
        """MinHR ranking key: heat recirculated room-wide per watt.

        Column ``j`` summed — the total inlet-temperature rise one watt
        of chassis ``j``'s exhaust causes across every inlet.  MinHR
        placement fills the chassis with the *lowest* contribution
        first.
        """
        return self.matrix.sum(axis=0)

    def permuted(self, order: Sequence[int]) -> "RecirculationMatrix":
        """The same room with chassis relabelled by ``order``.

        ``order[k]`` is the old index of the chassis now called ``k``,
        so ``permuted(order).matrix[a, b] == matrix[order[a], order[b]]``.
        """
        idx = np.asarray(order, dtype=int)
        if sorted(idx.tolist()) != list(range(self.n_chassis)):
            raise RoomError(
                f"order must be a permutation of 0..{self.n_chassis - 1}"
            )
        return RecirculationMatrix(self.matrix[np.ix_(idx, idx)])

    def fingerprint(self) -> str:
        """SHA-256 over the matrix shape and raw IEEE-754 bytes."""
        digest = hashlib.sha256()
        digest.update(repr(self.matrix.shape).encode())
        digest.update(self.matrix.tobytes())
        return digest.hexdigest()


def zero_recirculation(n_chassis: int) -> RecirculationMatrix:
    """An isolated room: no chassis heats any inlet."""
    return RecirculationMatrix(np.zeros((n_chassis, n_chassis)))


def uniform_recirculation(
    n_chassis: int,
    coefficient: float,
    self_coefficient: float = 0.0,
) -> RecirculationMatrix:
    """Every chassis heats every *other* inlet equally.

    Args:
        n_chassis: Room width.
        coefficient: Off-diagonal entry, degC/W.
        self_coefficient: Diagonal entry — a chassis' own exhaust
            re-entering its inlet (common in contained hot-aisle
            failures), degC/W.
    """
    matrix = np.full((n_chassis, n_chassis), float(coefficient))
    np.fill_diagonal(matrix, float(self_coefficient))
    return RecirculationMatrix(matrix)


def row_layout_recirculation(
    n_chassis: int,
    base: float = 0.004,
    decay: float = 0.5,
    self_coefficient: float = 0.001,
) -> RecirculationMatrix:
    """Chassis in one physical row: influence decays with distance.

    ``D[i, j] = base * decay**(|i - j| - 1)`` for neighbours, with a
    small self-recirculation diagonal — the shape MinHR's measured HRF
    matrices take in a single-row layout (strong nearest-neighbour
    terms, geometric falloff).  Defaults are sized so a loaded
    neighbour (~300 W exhaust) raises an adjacent inlet by ~1.2 degC.
    """
    if not 0.0 <= decay <= 1.0:
        raise RoomError(f"decay must lie in [0, 1], got {decay}")
    idx = np.arange(n_chassis)
    distance = np.abs(idx[:, None] - idx[None, :])
    matrix = float(base) * np.power(float(decay), np.maximum(distance - 1, 0))
    matrix[distance == 0] = float(self_coefficient)
    return RecirculationMatrix(matrix)


def downwind_recirculation(
    n_chassis: int,
    base: float = 0.012,
    decay: float = 0.5,
) -> RecirculationMatrix:
    """Exhaust drifts downwind along the aisle: ``j`` heats ``i > j``.

    ``D[i, j] = base * decay**(i - j - 1)`` for downwind chassis
    (``i > j``), zero elsewhere — the strictly lower-triangular shape
    of a directed airflow path (hot air migrating towards the end of
    the aisle).  This is the asymmetric regime where room-aware
    placement genuinely matters: the upwind chassis enjoys a clean
    CRAC-temperature inlet while the downwind end absorbs everyone
    else's heat, and the coolest-inlet and MinHR rankings *disagree*
    (the coolest inlets are upwind, but the least room-wide
    recirculation per watt comes from the downwind end).  Defaults are
    sized so a loaded upwind neighbour (~190 W exhaust) raises the
    adjacent downwind inlet by ~2.3 degC.
    """
    if not 0.0 <= decay <= 1.0:
        raise RoomError(f"decay must lie in [0, 1], got {decay}")
    idx = np.arange(n_chassis)
    offset = idx[:, None] - idx[None, :]
    matrix = np.where(
        offset > 0,
        float(base) * np.power(float(decay), np.maximum(offset - 1, 0)),
        0.0,
    )
    return RecirculationMatrix(matrix)

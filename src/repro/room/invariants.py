"""Room-level invariant auditing (the room analogue of the engine's
:class:`~repro.sim.invariants.InvariantAuditor`).

A converged :class:`~repro.room.model.RoomSolution` makes physical
promises the downstream capacity curves silently depend on.  The
auditor re-derives each one from the raw arrays and raises a typed
:class:`RoomInvariantViolation` naming the first broken envelope:

- every array finite;
- no inlet below the CRAC supply temperature (recirculated exhaust
  can only *heat* an inlet);
- the converged inlets actually satisfy the fixed-point equation
  ``inlet = T_crac + D @ P_exhaust`` within tolerance;
- within every chassis the steady ordering ``chip >= sink >=
  ambient >= inlet`` holds (each stage only adds heat);
- chassis exhaust is at least the gated floor (power-gated sockets
  still leak their gated draw) and matches the field's power sum;
- the recorded residual trail ends at or below the solve tolerance;
- optionally, no chip above an operator redline (the DVFS limit plus
  trip margin for trip-safety audits).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import RoomError
from .model import Room, RoomSolution, _topology_for

#: Slack absorbing accumulated float rounding in the re-derivations.
NUMERIC_SLACK = 1e-9


class RoomInvariantViolation(RoomError):
    """A room solution broke a physical envelope it promised to hold."""


class RoomInvariantAuditor:
    """Checks a converged room solution against its physical envelopes.

    Attributes:
        tolerance_c: Convergence tolerance the solve claimed (the
            fixed-point recheck allows this much drift).
        redline_c: Optional hard ceiling on any chip temperature —
            ``None`` skips the redline envelope (capacity searches
            probe past the limit on purpose).
    """

    def __init__(
        self,
        tolerance_c: float = 1e-6,
        redline_c: Optional[float] = None,
    ) -> None:
        if tolerance_c <= 0:
            raise RoomError("tolerance must be positive")
        self.tolerance_c = tolerance_c
        self.redline_c = redline_c

    def check(self, room: Room, solution: RoomSolution) -> None:
        """Audit one solution; raises on the first broken envelope.

        Raises:
            RoomInvariantViolation: naming the envelope and chassis.
        """
        self._check_finite(solution)
        crac = solution.crac_supply_c
        cold = solution.inlet_c - crac
        if (cold < -NUMERIC_SLACK).any():
            worst = int(np.argmin(cold))
            raise RoomInvariantViolation(
                f"chassis {worst} inlet {solution.inlet_c[worst]:.4f} "
                f"degC is below the CRAC supply {crac:.4f} degC"
            )
        rise = room.recirculation.inlet_rise(solution.exhaust_w)
        drift = np.abs(solution.inlet_c - (crac + rise))
        if (drift > self.tolerance_c + NUMERIC_SLACK).any():
            worst = int(np.argmax(drift))
            raise RoomInvariantViolation(
                f"chassis {worst} inlet drifts {drift[worst]:.3g} degC "
                f"from the fixed point (tolerance "
                f"{self.tolerance_c:.3g})"
            )
        if not solution.residuals_c:
            raise RoomInvariantViolation("solution records no residuals")
        if solution.residuals_c[-1] > self.tolerance_c + NUMERIC_SLACK:
            raise RoomInvariantViolation(
                f"final residual {solution.residuals_c[-1]:.3g} degC "
                f"is above tolerance {self.tolerance_c:.3g}"
            )
        for i, (spec, field) in enumerate(
            zip(room.chassis, solution.fields)
        ):
            inlet = solution.inlet_c[i]
            if (field.ambient_c < inlet - NUMERIC_SLACK).any():
                raise RoomInvariantViolation(
                    f"chassis {i} has an entry temperature below its "
                    f"own inlet {inlet:.4f} degC"
                )
            if (field.sink_c < field.ambient_c - NUMERIC_SLACK).any():
                raise RoomInvariantViolation(
                    f"chassis {i} has a sink colder than its entry air"
                )
            if (field.chip_c < field.sink_c - 0.5).any():
                # theta(P) may dip slightly negative at extreme power;
                # P * r_int dominates, so a materially inverted
                # chip/sink pair still means a broken solve.
                raise RoomInvariantViolation(
                    f"chassis {i} has a chip materially colder than "
                    f"its sink"
                )
            topology = _topology_for(spec)
            floor = float(topology.gated_power_array.sum())
            exhaust = float(solution.exhaust_w[i])
            if exhaust < floor - NUMERIC_SLACK:
                raise RoomInvariantViolation(
                    f"chassis {i} exhaust {exhaust:.3f} W is below its "
                    f"gated floor {floor:.3f} W"
                )
            total = float(np.sum(field.power_w))
            if abs(exhaust - total) > NUMERIC_SLACK:
                raise RoomInvariantViolation(
                    f"chassis {i} exhaust {exhaust:.6f} W disagrees "
                    f"with its field power sum {total:.6f} W"
                )
        if self.redline_c is not None:
            chips = solution.max_chip_c
            if (chips > self.redline_c).any():
                worst = int(np.argmax(chips))
                raise RoomInvariantViolation(
                    f"chassis {worst} chip {chips[worst]:.2f} degC "
                    f"exceeds the redline {self.redline_c:.2f} degC"
                )

    def _check_finite(self, solution: RoomSolution) -> None:
        arrays = [
            ("inlet_c", solution.inlet_c),
            ("exhaust_w", solution.exhaust_w),
        ]
        for i, field in enumerate(solution.fields):
            arrays.extend(
                (f"fields[{i}].{name}", getattr(field, name))
                for name in ("power_w", "ambient_c", "sink_c", "chip_c")
            )
        for name, values in arrays:
            if not np.isfinite(values).all():
                raise RoomInvariantViolation(
                    f"non-finite values in {name}"
                )

"""Coolest First (CF) and Hottest First (HF) policies.

CF is the classic data-center temperature-aware baseline: place work on
the coldest available compute element, adding heat where it is coolest.
HF is the deliberate inverse — the paper shows it *wins* on thermally
coupled systems at high load, because loading downstream sockets (which
have no downwind victims) keeps upstream air cool.
"""

from __future__ import annotations

from .base import Scheduler, register_scheduler


@register_scheduler
class CoolestFirst(Scheduler):
    """Schedule on the idle socket with the lowest chip temperature."""

    name = "CF"

    def select_socket(self, job, idle_ids, view) -> int:
        self._require_candidates(idle_ids)
        temps = view.chip_c[idle_ids]
        return int(idle_ids[int(temps.argmin())])


@register_scheduler
class HottestFirst(Scheduler):
    """Schedule on the idle socket with the highest chip temperature."""

    name = "HF"

    def select_socket(self, job, idle_ids, view) -> int:
        self._require_candidates(idle_ids)
        temps = view.chip_c[idle_ids]
        return int(idle_ids[int(temps.argmax())])

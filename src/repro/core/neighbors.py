"""Coolest Neighbors (CN) policy.

CN (Coskun et al.) is a chip-level CF variant that scores each location
by its own temperature *and* its physical neighbours' temperatures,
capturing lateral heat transfer on a die.  Applied to a dense server,
neighbours are the physically adjacent sockets: the previous/next chain
position in the same lane, the other lane at the same position, and the
same position in the rows above and below.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .base import Scheduler, register_scheduler


def _build_neighbor_lists(topology) -> List[np.ndarray]:
    """Adjacent-socket indices for every socket."""
    index = {}
    for site in topology.sites:
        index[(site.row, site.lane, site.chain_pos)] = site.socket_id
    neighbors: List[np.ndarray] = []
    for site in topology.sites:
        candidates = [
            (site.row, site.lane, site.chain_pos - 1),
            (site.row, site.lane, site.chain_pos + 1),
            (site.row, site.lane - 1, site.chain_pos),
            (site.row, site.lane + 1, site.chain_pos),
            (site.row - 1, site.lane, site.chain_pos),
            (site.row + 1, site.lane, site.chain_pos),
        ]
        found = [index[key] for key in candidates if key in index]
        neighbors.append(np.asarray(found, dtype=int))
    return neighbors


@register_scheduler
class CoolestNeighbors(Scheduler):
    """Minimise own temperature plus mean neighbour temperature."""

    name = "CN"

    def __init__(self) -> None:
        super().__init__()
        self._neighbors: List[np.ndarray] = []

    def reset(self, view, rng) -> None:
        super().reset(view, rng)
        self._neighbors = _build_neighbor_lists(view.topology)

    def select_socket(self, job, idle_ids, view) -> int:
        self._require_candidates(idle_ids)
        chip = view.chip_c
        best_socket = int(idle_ids[0])
        best_score = np.inf
        for socket_id in idle_ids:
            neighbor_ids = self._neighbors[socket_id]
            if neighbor_ids.size:
                neighbor_term = float(chip[neighbor_ids].mean())
            else:
                neighbor_term = float(chip[socket_id])
            score = 0.5 * float(chip[socket_id]) + 0.5 * neighbor_term
            if score < best_score:
                best_score = score
                best_socket = int(socket_id)
        return best_socket

"""Vectorised placement-scoring kernels for the predictive policies.

The per-candidate Python loop in :class:`~repro.core.coupling_predictor.
CouplingPredictor` dominated placement cost: for every candidate socket
it predicted the job's power draw, walked the candidate's downwind chain
(a Python-level scan over ``downwind_of``/``influence_on``), and ran two
frequency-selection passes per busy victim.  This module batches all of
that into a handful of numpy calls while reproducing the scalar path
bit for bit:

- :func:`~repro.core.prediction.predict_job_powers` evaluates the job's
  power draw on every candidate at once (the per-element float op order
  matches :func:`~repro.core.prediction.predicted_job_power` exactly).
- :class:`PlacementKernel` flattens each topology's downwind chains into
  contiguous arrays once (``downwind_of`` is a static property of the
  uni-directional airflow ladder), gathers every (candidate, victim)
  pair in one shot, and pushes the whole batch through a single
  :func:`~repro.sim.power_manager.select_frequencies_steady` call.
- The victims' *current* steady-state frequencies depend only on
  per-socket state that is frozen for the duration of one engine step
  (temperatures, utilisation, running-job power curves), so the kernel
  memoises them per step: the cache is keyed on ``view.time_s``,
  extended lazily for sockets that become busy mid-step (the Placer
  drain only ever flips sockets idle -> busy), and dropped whenever the
  timestamp moves or the scheduler is reset.  This is the incremental
  half of the optimisation: with D downwind sockets per candidate and
  N candidates, the per-placement cost of the "now" side drops from
  O(N * D) frequency selections to O(N) amortised.

Bit-identity notes (the kernel must fingerprint-match the scalar path):

- ``select_frequencies_steady`` is elementwise per column, so batching
  victims from different candidates into one flat call yields the same
  bits as N small calls.
- numpy's pairwise summation splits depend on array length, so the
  final per-candidate ``(losses * busy_ema).sum()`` reduction is done
  per contiguous segment with ``ndarray.sum()`` — never with
  ``reduceat``/axis tricks, which change the reduction tree.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..backend import get_backend
from ..backend import numpy_xp as np
from ..sim.power_manager import select_frequencies_steady

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..backend import ArrayBackend
    from ..server.topology import ServerTopology
    from ..sim.view import SchedulerView


class PlacementKernel:
    """Batched downwind-slowdown evaluation for one topology.

    The kernel owns two kinds of state with different lifetimes:

    - *Topology-static* flattened downwind chains (``_down_flat`` /
      ``_down_offsets`` / ``_down_counts``), valid for the lifetime of
      the :class:`~repro.server.topology.ServerTopology` instance.
    - A *per-step* cache of each busy socket's current steady-state
      frequency, keyed on ``view.time_s``.  Callers must
      :meth:`invalidate` it whenever per-socket state may have changed
      outside the normal step cadence (scheduler reset / engine reuse).
    """

    def __init__(
        self,
        topology: "ServerTopology",
        backend: "ArrayBackend | None" = None,
    ) -> None:
        self.topology = topology
        # Placement is decision-path code: gathers, boolean masks and
        # segment sums run on host numpy arrays from the SchedulerView.
        # The backend only governs how the persistent per-step caches
        # are updated (in place vs functionally).
        self._backend = get_backend(backend)
        coupling = topology.coupling
        n = topology.n_sockets
        chains = [coupling.downwind_of(s) for s in range(n)]
        counts = np.array([c.size for c in chains], dtype=np.intp)
        offsets = np.zeros(n, dtype=np.intp)
        if n > 1:
            np.cumsum(counts[:-1], out=offsets[1:])
        self._down_counts = counts
        self._down_offsets = offsets
        self._down_flat = (
            np.concatenate(chains)
            if n
            else np.empty(0, dtype=np.intp)
        )
        #: Read-only (victim, source) coupling-weight matrix.
        self._weights = coupling.matrix
        self._freq_now = np.zeros(n)
        self._freq_valid = np.zeros(n, dtype=bool)
        self._cache_time: Optional[float] = None

    def invalidate(self) -> None:
        """Drop the per-step frequency cache (run start / state reset)."""
        self._cache_time = None
        self._freq_valid = self._backend.at_set(
            self._freq_valid, slice(None), False
        )

    def downwind_losses(
        self,
        view: "SchedulerView",
        candidates: np.ndarray,
        job_powers: np.ndarray,
    ) -> np.ndarray:
        """Predicted downwind frequency loss (MHz) per candidate.

        Bit-identical to calling :func:`~repro.core.
        prediction.predict_downwind_slowdown` once per candidate with
        the matching ``job_powers`` entry.
        """
        candidates = np.asarray(candidates)
        n_c = candidates.size
        out = np.zeros(n_c)
        counts = self._down_counts[candidates]
        total = int(counts.sum())
        if total == 0:
            return out

        # Flatten every (candidate, victim) pair.  Segment order is
        # candidate order; within a segment, victims appear in the same
        # ascending-id order the scalar scan uses.
        seg = np.repeat(np.arange(n_c), counts)
        starts = np.cumsum(counts) - counts
        pos = np.arange(total) - np.repeat(starts, counts)
        victims = self._down_flat[
            self._down_offsets[candidates][seg] + pos
        ]

        # Idle victims contribute nothing (gated, future work unknown).
        busy_pair = np.asarray(view.busy[victims])
        if not busy_pair.any():
            return out
        victims = victims[busy_pair]
        seg = seg[busy_pair]

        freq_now = self._ensure_freq_now(view, victims)[victims]

        topology = self.topology
        heat_delta = job_powers - topology.gated_power_array[candidates]
        pair_cands = candidates[seg]
        weights = self._weights[victims, pair_cands]
        ambient_delta = weights * heat_delta[seg]

        freq_later = select_frequencies_steady(
            ambient_c=view.ambient_c[victims] + ambient_delta,
            chip_c=view.chip_c[victims],
            dyn_max_w=view.dyn_max_w[victims],
            dyn_exp=view.dyn_exp[victims],
            tdp_w=topology.tdp_array[victims],
            r_ext=topology.r_ext_array[victims],
            theta_offset=topology.theta_offset_array[victims],
            theta_slope=topology.theta_slope_array[victims],
            ladder=view.ladder,
            params=view.params,
        )
        losses = np.maximum(freq_now - freq_later, 0.0)
        weighted = losses * view.busy_ema[victims]

        # Per-candidate reduction over contiguous segments.  Each slice
        # is the exact array the scalar path would have summed, so
        # ndarray.sum() reproduces its pairwise reduction tree.
        seg_counts = np.bincount(seg, minlength=n_c)
        stops = np.cumsum(seg_counts)
        for i in range(n_c):
            if seg_counts[i]:
                out[i] = weighted[stops[i] - seg_counts[i] : stops[i]].sum()
        return out

    def _ensure_freq_now(
        self, view: "SchedulerView", victims: np.ndarray
    ) -> np.ndarray:
        """Return the freq-now cache, filled for every id in ``victims``.

        The cache is valid for one engine timestamp: between two thermal
        updates the victims' temperatures, utilisation EMA, and power
        curves are frozen, and placement decisions only flip sockets
        idle -> busy (which extends, never stales, the valid set).
        """
        if self._cache_time != view.time_s:
            self._cache_time = view.time_s
            self._freq_valid = self._backend.at_set(
                self._freq_valid, slice(None), False
            )
        need = np.zeros_like(self._freq_valid)
        need[victims] = True
        need &= ~self._freq_valid
        if need.any():
            ids = np.nonzero(need)[0]
            topology = self.topology
            self._freq_now = self._backend.at_set(
                self._freq_now,
                ids,
                select_frequencies_steady(
                    ambient_c=view.ambient_c[ids],
                    chip_c=view.chip_c[ids],
                    dyn_max_w=view.dyn_max_w[ids],
                    dyn_exp=view.dyn_exp[ids],
                    tdp_w=topology.tdp_array[ids],
                    r_ext=topology.r_ext_array[ids],
                    theta_offset=topology.theta_offset_array[ids],
                    theta_slope=topology.theta_slope_array[ids],
                    ladder=view.ladder,
                    params=view.params,
                ),
            )
            self._freq_valid = self._backend.at_set(
                self._freq_valid, ids, True
            )
        return self._freq_now

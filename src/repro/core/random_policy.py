"""Random and Adaptive-Random policies.

Random approximates uniform power dissipation by spreading jobs evenly.
Adaptive-Random (Coskun et al.) refines CF with temperature *history*:
among the currently coolest sockets it keeps only those that have also
been historically cool, then picks randomly — weeding out locations that
are persistently hot.
"""

from __future__ import annotations

import numpy as np

from .base import Scheduler, register_scheduler

#: Sockets within this many degC of the minimum count as "coolest".
TEMPERATURE_BAND_C = 1.0


@register_scheduler
class RandomPolicy(Scheduler):
    """Uniformly random placement over idle sockets."""

    name = "Random"

    def select_socket(self, job, idle_ids, view) -> int:
        self._require_candidates(idle_ids)
        return int(self.rng.choice(idle_ids))


@register_scheduler
class AdaptiveRandom(Scheduler):
    """Random choice among currently and historically cool sockets."""

    name = "A-Random"

    def __init__(self, band_c: float = TEMPERATURE_BAND_C) -> None:
        super().__init__()
        self.band_c = band_c

    def select_socket(self, job, idle_ids, view) -> int:
        self._require_candidates(idle_ids)
        current = view.chip_c[idle_ids]
        cool_now = idle_ids[current <= current.min() + self.band_c]
        history = view.history_c[cool_now]
        cool_history = cool_now[history <= history.min() + self.band_c]
        return int(self.rng.choice(cool_history))

"""Scheduling policies — the paper's core contribution and every baseline.

Data-center-level baselines: Coolest First (CF), Hottest First (HF),
Random, and MinHR (heat-recirculation minimisation).  Chip-level
baselines: Coolest Neighbors (CN), Balanced, Balanced Locations
(Balanced-L), Adaptive-Random (A-Random), and Predictive.  The proposed
scheme is :class:`CouplingPredictor` (CP), which extends Predictive with
an explicit model of the performance lost by downwind sockets.

Every policy implements :class:`Scheduler` and is discoverable through
:func:`get_scheduler` / :data:`SCHEDULER_NAMES`.
"""

from .base import (
    Scheduler,
    get_scheduler,
    register_scheduler,
    SCHEDULER_NAMES,
    all_scheduler_names,
)
from .classical import FirstFit, LeastRecentlyUsed, RoundRobin
from .coolest_first import CoolestFirst, HottestFirst
from .random_policy import RandomPolicy, AdaptiveRandom
from .min_hr import MinHR
from .neighbors import CoolestNeighbors
from .balanced import Balanced, BalancedLocations
from .predictive import Predictive
from .coupling_predictor import CouplingPredictor
from .migration import MigrationPolicy
from .prediction import predict_job_frequency, predict_downwind_slowdown

__all__ = [
    "Scheduler",
    "get_scheduler",
    "register_scheduler",
    "SCHEDULER_NAMES",
    "all_scheduler_names",
    "FirstFit",
    "RoundRobin",
    "LeastRecentlyUsed",
    "CoolestFirst",
    "HottestFirst",
    "RandomPolicy",
    "AdaptiveRandom",
    "MinHR",
    "CoolestNeighbors",
    "Balanced",
    "BalancedLocations",
    "Predictive",
    "CouplingPredictor",
    "MigrationPolicy",
    "predict_job_frequency",
    "predict_downwind_slowdown",
]

"""Scheduler interface and registry."""

from __future__ import annotations

import abc
from typing import Callable, Dict, List, TYPE_CHECKING

import numpy as np

from ..errors import SchedulingError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.view import SchedulerView
    from ..workloads.job import Job


class Scheduler(abc.ABC):
    """A job placement policy.

    The engine calls :meth:`reset` once per run and then
    :meth:`select_socket` for every placement decision.  Policies must
    be deterministic given the RNG handed to :meth:`reset`.

    Both hooks observe the simulation through a
    :class:`~repro.sim.view.SchedulerView` — a read-only facade whose
    numpy arrays are non-writeable, so an accidental in-place mutation
    of engine state raises instead of silently corrupting the run.
    """

    #: Registry name; subclasses override.
    name: str = "abstract"

    def __init__(self) -> None:
        self.rng: np.random.Generator = np.random.default_rng(0)

    def reset(
        self, view: "SchedulerView", rng: np.random.Generator
    ) -> None:
        """Prepare for a fresh run (precompute topology-derived data)."""
        self.rng = rng

    @abc.abstractmethod
    def select_socket(
        self,
        job: "Job",
        idle_ids: np.ndarray,
        view: "SchedulerView",
    ) -> int:
        """Choose one of ``idle_ids`` for ``job``.

        Args:
            job: The job to place.
            idle_ids: Indices of currently idle sockets (non-empty).
            view: Read-only view of the simulation.

        Returns:
            The chosen socket index (must come from ``idle_ids``).
        """

    def _require_candidates(self, idle_ids: np.ndarray) -> None:
        if idle_ids.size == 0:
            raise SchedulingError(
                f"{self.name}: asked to schedule with no idle socket"
            )


#: Registered scheduler factories by name.
_REGISTRY: Dict[str, Callable[[], Scheduler]] = {}


def register_scheduler(cls):
    """Class decorator adding a Scheduler subclass to the registry."""
    if not issubclass(cls, Scheduler):
        raise SchedulingError(
            f"{cls.__name__} does not subclass Scheduler"
        )
    if cls.name in _REGISTRY:
        raise SchedulingError(
            f"duplicate scheduler name {cls.name!r}"
        )
    _REGISTRY[cls.name] = cls
    return cls


def get_scheduler(name: str) -> Scheduler:
    """Instantiate a registered scheduler by name.

    Raises:
        SchedulingError: for unknown names.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError as exc:
        known = ", ".join(sorted(_REGISTRY))
        raise SchedulingError(
            f"unknown scheduler {name!r}; known: {known}"
        ) from exc
    return factory()


def all_scheduler_names() -> List[str]:
    """Every registered scheduler name, sorted."""
    return sorted(_REGISTRY)


class _SchedulerNames:
    """Lazy live view over the registry (import-order independent)."""

    def __iter__(self):
        return iter(all_scheduler_names())

    def __contains__(self, name: str) -> bool:
        return name in _REGISTRY

    def __len__(self) -> int:
        return len(_REGISTRY)


#: Iterable of every registered scheduler name.
SCHEDULER_NAMES = _SchedulerNames()

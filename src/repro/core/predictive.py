"""Predictive policy (Yeo et al. / Ayoub & Rosing).

Predictive estimates the future temperature of each candidate socket if
the job were placed there, derives the frequency the socket could then
sustain, and picks the socket that runs the job fastest.  Ties between
sockets that predict the same DVFS state break toward the socket whose
heat sink would settle coolest (lowest ``ambient + P * R_ext``), i.e.
the one that can hold the frequency longest — which is why Predictive
gravitates to cool sockets with the better 30-fin sink (zone 2 in the
SUT) at low load.
"""

from __future__ import annotations

import numpy as np

from .base import Scheduler, register_scheduler
from .prediction import (
    predict_job_frequency,
    predict_job_powers,
    predicted_job_power,
)

#: MHz-per-degC weight of the sink steady-state tie-breaker; small
#: enough never to override a 200 MHz state difference.
SINK_TIEBREAK_WEIGHT = 0.05


@register_scheduler
class Predictive(Scheduler):
    """Place the job where its predicted frequency is highest."""

    name = "Predictive"

    def __init__(self, use_kernel: bool = True) -> None:
        """Create a Predictive scheduler.

        Args:
            use_kernel: Evaluate candidate powers through the batched
                :func:`~repro.core.prediction.predict_job_powers`
                kernel (default).  Disabled, the per-candidate scalar
                loop runs instead — bit-identical, kept for oracle
                tests and benchmark baselines.
        """
        super().__init__()
        self.use_kernel = use_kernel

    def select_socket(self, job, idle_ids, view) -> int:
        self._require_candidates(idle_ids)
        freq = predict_job_frequency(view, idle_ids, job)
        sink_ss = self._sink_steady_state(job, idle_ids, view, freq)
        # Among equal predicted states, prefer the socket whose sink
        # would settle coolest (sustains the state longest) and whose
        # sink is currently freshest (longest boost runway).
        score = freq - SINK_TIEBREAK_WEIGHT * (
            sink_ss + view.sink_c[idle_ids]
        )
        return int(idle_ids[int(np.argmax(score))])

    def _sink_steady_state(self, job, idle_ids, view, freq) -> np.ndarray:
        """Eventual sink temperature if the job ran indefinitely."""
        topology = view.topology
        if self.use_kernel:
            powers = predict_job_powers(view, idle_ids, job, freq)
        else:
            powers = np.array(
                [
                    predicted_job_power(view, int(socket), job, float(f))
                    for socket, f in zip(idle_ids, freq)
                ]
            )
        return (
            view.ambient_c[idle_ids]
            + powers * topology.r_ext_array[idle_ids]
        )

"""Predictive policy (Yeo et al. / Ayoub & Rosing).

Predictive estimates the future temperature of each candidate socket if
the job were placed there, derives the frequency the socket could then
sustain, and picks the socket that runs the job fastest.  Ties between
sockets that predict the same DVFS state break toward the socket whose
heat sink would settle coolest (lowest ``ambient + P * R_ext``), i.e.
the one that can hold the frequency longest — which is why Predictive
gravitates to cool sockets with the better 30-fin sink (zone 2 in the
SUT) at low load.
"""

from __future__ import annotations

import numpy as np

from .base import Scheduler, register_scheduler
from .prediction import predict_job_frequency, predicted_job_power

#: MHz-per-degC weight of the sink steady-state tie-breaker; small
#: enough never to override a 200 MHz state difference.
SINK_TIEBREAK_WEIGHT = 0.05


@register_scheduler
class Predictive(Scheduler):
    """Place the job where its predicted frequency is highest."""

    name = "Predictive"

    def select_socket(self, job, idle_ids, view) -> int:
        self._require_candidates(idle_ids)
        freq = predict_job_frequency(view, idle_ids, job)
        sink_ss = self._sink_steady_state(job, idle_ids, view, freq)
        # Among equal predicted states, prefer the socket whose sink
        # would settle coolest (sustains the state longest) and whose
        # sink is currently freshest (longest boost runway).
        score = freq - SINK_TIEBREAK_WEIGHT * (
            sink_ss + view.sink_c[idle_ids]
        )
        return int(idle_ids[int(np.argmax(score))])

    @staticmethod
    def _sink_steady_state(job, idle_ids, view, freq) -> np.ndarray:
        """Eventual sink temperature if the job ran indefinitely."""
        topology = view.topology
        powers = np.array(
            [
                predicted_job_power(view, int(socket), job, float(f))
                for socket, f in zip(idle_ids, freq)
            ]
        )
        return (
            view.ambient_c[idle_ids]
            + powers * topology.r_ext_array[idle_ids]
        )

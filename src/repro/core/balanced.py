"""Balanced and Balanced Locations (Balanced-L) policies.

Balanced (Coskun et al.) flattens the temperature profile by scheduling
work as far as possible from the current hot spot.  Balanced-L prefers
locations that are structurally cool — on a die, the edges; in a dense
server, the sockets nearest the air inlet.
"""

from __future__ import annotations

import numpy as np

from .base import Scheduler, register_scheduler


@register_scheduler
class Balanced(Scheduler):
    """Schedule farthest from the hottest socket in the server."""

    name = "Balanced"

    def __init__(self) -> None:
        super().__init__()
        self._positions: np.ndarray = np.zeros((0, 3))

    def reset(self, view, rng) -> None:
        super().reset(view, rng)
        topology = view.topology
        self._positions = np.stack(
            [topology.x_array, topology.y_array, topology.z_array], axis=1
        )

    def select_socket(self, job, idle_ids, view) -> int:
        self._require_candidates(idle_ids)
        hottest = int(np.argmax(view.chip_c))
        deltas = self._positions[idle_ids] - self._positions[hottest]
        distances = np.sqrt((deltas**2).sum(axis=1))
        return int(idle_ids[int(np.argmax(distances))])


@register_scheduler
class BalancedLocations(Scheduler):
    """Prefer the sockets closest to the air inlet (coolest locations).

    Ties (sockets at the same distance from the inlet) break toward the
    cooler chip.
    """

    name = "Balanced-L"

    def select_socket(self, job, idle_ids, view) -> int:
        self._require_candidates(idle_ids)
        x = view.topology.x_array[idle_ids]
        # Chip temperature only breaks ties between equal-x sockets.
        score = x + 1e-4 * view.chip_c[idle_ids]
        return int(idle_ids[int(np.argmin(score))])

"""Frequency prediction helpers shared by Predictive and CP.

Both policies follow the mechanics of Section IV-C: assume the job is
placed on a candidate socket, estimate the chip temperature with
Equation 1, compensate leakage once, and find the highest DVFS state
that respects the temperature limit (and the boost governor).  The same
machinery, pointed at a downwind socket with its entry temperature
shifted by the coupling weight, predicts how much that socket would slow
down.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..backend import get_backend
from ..backend import numpy_xp as np
from ..sim.power_manager import (
    dynamic_power,
    select_frequencies,
    select_frequencies_steady,
)
from ..workloads.benchmark import profile_for
from ..workloads.power_model import (
    LEAKAGE_FLOOR_FRACTION,
    LEAKAGE_REFERENCE_C,
    LEAKAGE_TDP_FRACTION,
    LEAKAGE_TEMP_COEFF,
    leakage_power,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..backend import ArrayBackend
    from ..sim.view import SchedulerView
    from ..workloads.job import Job


def predict_job_frequency(
    view: "SchedulerView",
    socket_ids: np.ndarray,
    job: "Job",
    sink_c: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Predicted frequency (MHz) ``job`` would get on each candidate.

    Args:
        view: Read-only simulation view.
        socket_ids: Candidate socket indices.
        job: The job being placed.
        sink_c: Optional override of candidate sink temperatures (used
            for what-if analyses); defaults to current sink state.

    Returns:
        Array of predicted MHz, aligned with ``socket_ids``.
    """
    topology = view.topology
    ids = np.asarray(socket_ids)
    tdp = topology.tdp_array[ids]
    profile = profile_for(job.app.benchmark_set)
    dyn_max = job.app.power_at_max_w - LEAKAGE_TDP_FRACTION * tdp
    dyn_exp = np.full(ids.shape, profile.dynamic_exponent)
    return select_frequencies(
        sink_c=view.sink_c[ids] if sink_c is None else sink_c,
        chip_c=view.chip_c[ids],
        dyn_max_w=dyn_max,
        dyn_exp=dyn_exp,
        tdp_w=tdp,
        theta_offset=topology.theta_offset_array[ids],
        theta_slope=topology.theta_slope_array[ids],
        ladder=view.ladder,
        params=view.params,
    )


def predicted_job_power(
    view: "SchedulerView", socket_id: int, job: "Job", freq_mhz: float
) -> float:
    """Power the job would draw on a socket at the predicted frequency."""
    tdp = float(view.topology.tdp_array[socket_id])
    profile = profile_for(job.app.benchmark_set)
    dyn_max = job.app.power_at_max_w - LEAKAGE_TDP_FRACTION * tdp
    dyn = dynamic_power(
        freq_mhz, dyn_max, profile.dynamic_exponent, view.ladder.max_mhz
    )
    leak = leakage_power(float(view.chip_c[socket_id]), tdp)
    return float(dyn) + float(leak)


def predict_job_powers(
    view: "SchedulerView",
    socket_ids: np.ndarray,
    job: "Job",
    freq_mhz: np.ndarray,
    backend: "ArrayBackend | None" = None,
) -> np.ndarray:
    """Vectorised :func:`predicted_job_power` over many candidates.

    Bit-identical to calling the scalar helper once per socket: the
    per-element float op order is preserved (in every backend's
    namespace), and the leakage law is inlined because
    :func:`~repro.workloads.power_model.leakage_power` validates
    ``tdp_w`` as a scalar.
    """
    xp = get_backend(backend).xp
    topology = view.topology
    ids = np.asarray(socket_ids)
    tdp = topology.tdp_array[ids]
    profile = profile_for(job.app.benchmark_set)
    dyn_max = job.app.power_at_max_w - LEAKAGE_TDP_FRACTION * tdp
    dyn = dynamic_power(
        freq_mhz, dyn_max, profile.dynamic_exponent, view.ladder.max_mhz
    )
    factor = 1.0 + LEAKAGE_TEMP_COEFF * (
        xp.asarray(view.chip_c[ids]) - LEAKAGE_REFERENCE_C
    )
    factor = xp.maximum(factor, LEAKAGE_FLOOR_FRACTION)
    leak = (LEAKAGE_TDP_FRACTION * tdp) * factor
    return dyn + leak


def predict_downwind_slowdown(
    view: "SchedulerView", candidate: int, job_power_w: float
) -> float:
    """Total predicted frequency loss (MHz) across downwind sockets.

    Assumes the downwind sockets keep running their current jobs while
    the candidate's heat output settles at ``job_power_w`` instead of
    the gated idle draw it would decay to if left alone; their entry
    air warms by the coupling weight times that difference, their sinks
    eventually follow, and their achievable frequency drops accordingly.
    Idle downwind sockets contribute nothing (they are gated and their
    future work is unknown).
    """
    topology = view.topology
    coupling = topology.coupling
    downwind = coupling.downwind_of(candidate)
    if downwind.size == 0:
        return 0.0
    busy_down = downwind[view.busy[downwind]]
    if busy_down.size == 0:
        return 0.0

    heat_delta = job_power_w - float(
        topology.gated_power_array[candidate]
    )
    weights = np.array(
        [coupling.influence_on(int(d), candidate) for d in busy_down]
    )
    ambient_delta = weights * heat_delta

    common = dict(
        chip_c=view.chip_c[busy_down],
        dyn_max_w=view.dyn_max_w[busy_down],
        dyn_exp=view.dyn_exp[busy_down],
        tdp_w=topology.tdp_array[busy_down],
        r_ext=topology.r_ext_array[busy_down],
        theta_offset=topology.theta_offset_array[busy_down],
        theta_slope=topology.theta_slope_array[busy_down],
        ladder=view.ladder,
        params=view.params,
    )
    freq_now = select_frequencies_steady(
        ambient_c=view.ambient_c[busy_down], **common
    )
    freq_later = select_frequencies_steady(
        ambient_c=view.ambient_c[busy_down] + ambient_delta, **common
    )
    losses = np.maximum(freq_now - freq_later, 0.0)
    # A predicted loss only materialises while the victim keeps running
    # work; weight by its observed utilisation.
    return float((losses * view.busy_ema[busy_down]).sum())

"""CouplingPredictor (CP) — the paper's proposed policy.

CP extends Predictive with an explicit account of inter-socket thermal
coupling.  For every candidate socket it predicts (a) the frequency the
job would achieve there and (b) the total frequency the sockets downwind
of the candidate would *lose* because of the added heat, and places the
job where the net benefit is largest.  Given a socket that runs the job
at 1700 MHz but costs two downstream sockets 300 MHz combined, and one
that runs it at 1600 MHz costing nothing, CP picks the second.

Mechanics (Section IV-C): at each decision the scheduler picks a row of
cartridges with idle sockets at random and evaluates only the candidates
within that row — keeping the scheduler cheap — using Equation 1 with
one leakage-compensation pass and a table lookup into the offline
coupling map for downwind entry temperatures.

The scoring itself runs through the vectorised
:class:`~repro.core.kernels.PlacementKernel` by default (batched
candidate evaluation plus a per-step downwind frequency cache); the
scalar reference path is kept behind ``use_kernel=False`` for the
identity oracle and the kernel benchmarks, and both paths are pinned
bit-identical by ``tests/test_kernel_identity.py``.
"""

from __future__ import annotations

import numpy as np

from .base import Scheduler, register_scheduler
from .kernels import PlacementKernel
from .prediction import (
    predict_downwind_slowdown,
    predict_job_frequency,
    predict_job_powers,
    predicted_job_power,
)
from .predictive import SINK_TIEBREAK_WEIGHT


@register_scheduler
class CouplingPredictor(Scheduler):
    """Net-benefit placement: own speed minus downwind slowdown."""

    name = "CP"

    def __init__(
        self,
        row_restricted: bool = True,
        coupling_aware: bool = True,
        use_kernel: bool = True,
    ) -> None:
        """Create a CP scheduler.

        Args:
            row_restricted: Evaluate candidates only within one randomly
                chosen row per decision (the paper's cost-saving
                mechanic).  Disabled, CP searches every idle socket.
            coupling_aware: Include the downwind-slowdown term.  With it
                disabled CP degenerates to row-restricted Predictive
                (used by the ablation benches).
            use_kernel: Score candidates through the vectorised
                :class:`~repro.core.kernels.PlacementKernel` (default).
                Disabled, CP runs the scalar per-candidate reference
                loop — bit-identical, kept for oracle tests and
                benchmark baselines.
        """
        super().__init__()
        self.row_restricted = row_restricted
        self.coupling_aware = coupling_aware
        self.use_kernel = use_kernel
        self._kernel = None

    def reset(self, view, rng) -> None:
        super().reset(view, rng)
        # Engine reuse re-enters with fresh state under the same
        # timestamps; drop any cached per-step frequencies.
        if self._kernel is not None:
            self._kernel.invalidate()

    def select_socket(self, job, idle_ids, view) -> int:
        self._require_candidates(idle_ids)
        candidates = self._candidate_pool(idle_ids, view)
        freq = predict_job_frequency(view, candidates, job)
        if not self.use_kernel:
            return self._select_socket_scalar(job, candidates, freq, view)

        topology = view.topology
        kernel = self._kernel
        if kernel is None or kernel.topology is not topology:
            kernel = self._kernel = PlacementKernel(topology)
        powers = predict_job_powers(view, candidates, job, freq)
        if self.coupling_aware:
            slowdown = kernel.downwind_losses(view, candidates, powers)
        else:
            slowdown = 0.0
        sink_ss = (
            view.ambient_c[candidates]
            + powers * topology.r_ext_array[candidates]
        )
        scores = (
            freq
            - slowdown
            - SINK_TIEBREAK_WEIGHT * (sink_ss + view.sink_c[candidates])
        )
        return int(candidates[int(np.argmax(scores))])

    def _select_socket_scalar(self, job, candidates, freq, view) -> int:
        """Scalar per-candidate reference scoring (pre-kernel path)."""
        scores = np.empty(candidates.shape, dtype=float)
        topology = view.topology
        for i, (socket, f_mhz) in enumerate(zip(candidates, freq)):
            socket = int(socket)
            power = predicted_job_power(view, socket, job, float(f_mhz))
            slowdown = 0.0
            if self.coupling_aware:
                slowdown = predict_downwind_slowdown(view, socket, power)
            sink_ss = (
                view.ambient_c[socket]
                + power * topology.r_ext_array[socket]
            )
            scores[i] = (
                float(f_mhz)
                - slowdown
                - SINK_TIEBREAK_WEIGHT
                * (sink_ss + float(view.sink_c[socket]))
            )
        return int(candidates[int(np.argmax(scores))])

    def _candidate_pool(self, idle_ids, view) -> np.ndarray:
        """Idle sockets of one random row, or all idle sockets."""
        if not self.row_restricted:
            return idle_ids
        rows = view.topology.row_array[idle_ids]
        unique_rows = np.unique(rows)
        chosen = unique_rows[self.rng.integers(0, unique_rows.size)]
        return idle_ids[rows == chosen]

"""Thermal-aware workload migration (the paper's Section VI extension).

The paper notes its scheduling strategy "can just as easily be used to
choose sockets for workload migration in suitable systems, or even
identify when migration would be profitable" — migration matters when
job durations are long relative to thermal time constants.  This module
provides that extension: a :class:`MigrationPolicy` that the engine
consults periodically, moving long-running jobs from throttled sockets
to sockets where they are predicted to run faster, charging a
configurable migration cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, TYPE_CHECKING, Tuple

import numpy as np

from ..errors import SchedulingError
from .prediction import (
    predict_downwind_slowdown,
    predict_job_frequency,
    predicted_job_power,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.view import SchedulerView


@dataclass
class MigrationPolicy:
    """Periodically migrate throttled long jobs to faster sockets.

    Migration on a thermally coupled server is easy to get wrong: every
    move spreads heat over one more warm socket, so naive
    chase-the-boost migration loses to doing nothing.  The policy is
    therefore deliberately conservative — it only rescues *deeply
    throttled* long jobs (below the sustained frequency, i.e. pinned by
    the 95 degC limit), and scores destinations the way CP scores
    placements: predicted own frequency minus the predicted slowdown
    inflicted on the destination's downwind sockets.

    Attributes:
        interval_s: How often the engine consults the policy, seconds.
        min_remaining_ms: Only jobs with at least this much work left
            are candidates (migration must amortise its cost).
        min_gain_mhz: Required net predicted gain (own improvement
            minus downwind damage); also absorbs prediction noise as
            hysteresis.
        cost_ms: Work-equivalent penalty added to a migrated job
            (state transfer, cache refill).
        max_moves_per_round: Cap on simultaneous migrations.
        only_below_sustained: Restrict candidates to jobs throttled
            below the sustained frequency (the regime where the source
            socket is genuinely pathological).
    """

    interval_s: float = 0.1
    min_remaining_ms: float = 50.0
    min_gain_mhz: float = 250.0
    cost_ms: float = 2.0
    max_moves_per_round: int = 4
    only_below_sustained: bool = True

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise SchedulingError("migration interval must be positive")
        if self.min_remaining_ms < 0 or self.cost_ms < 0:
            raise SchedulingError(
                "migration thresholds must be non-negative"
            )
        if self.min_gain_mhz <= 0:
            raise SchedulingError("migration gain must be positive")
        if self.max_moves_per_round < 1:
            raise SchedulingError("max moves must be >= 1")

    def propose(self, view: "SchedulerView") -> List[Tuple[int, int]]:
        """Propose (source, destination) socket moves.

        Destinations are idle sockets; each destination is used at most
        once per round, and a job is only moved when the predicted
        frequency gain clears ``min_gain_mhz``.
        """
        idle = view.idle_socket_ids()
        if idle.size == 0:
            return []
        eligible = view.busy & (
            view.remaining_work_ms >= self.min_remaining_ms
        )
        if self.only_below_sustained:
            eligible &= view.freq_mhz < float(
                view.ladder.sustained_mhz
            )
        candidates = np.nonzero(eligible)[0]
        if candidates.size == 0:
            return []

        # Most-throttled jobs first: they have the most to gain.
        candidates = candidates[np.argsort(view.freq_mhz[candidates])]
        moves: List[Tuple[int, int]] = []
        taken = np.zeros(view.n_sockets, dtype=bool)
        for source in candidates:
            if len(moves) >= self.max_moves_per_round:
                break
            job = view.running_jobs[source]
            if job is None:
                continue
            available = idle[~taken[idle]]
            if available.size == 0:
                break
            predicted = predict_job_frequency(view, available, job)
            scores = np.empty(available.shape, dtype=float)
            for i, (dest, f_mhz) in enumerate(
                zip(available, predicted)
            ):
                power = predicted_job_power(
                    view, int(dest), job, float(f_mhz)
                )
                scores[i] = float(f_mhz) - predict_downwind_slowdown(
                    view, int(dest), power
                )
            best = int(np.argmax(scores))
            gain = float(scores[best]) - float(view.freq_mhz[source])
            if gain >= self.min_gain_mhz:
                destination = int(available[best])
                moves.append((int(source), destination))
                taken[destination] = True
        return moves

"""Classical thermally-oblivious baselines.

These are not evaluated in the paper, but any scheduler study needs the
plain-OS baselines to contextualise the temperature-aware policies:

- :class:`FirstFit` — the lowest-numbered idle socket (what a naive
  bitmap allocator does);
- :class:`RoundRobin` — rotate through sockets, the default spreading
  behaviour of most cluster schedulers;
- :class:`LeastRecentlyUsed` — place on the socket idle the longest,
  a freshness heuristic that approximates CF without any sensors.
"""

from __future__ import annotations

import numpy as np

from .base import Scheduler, register_scheduler


@register_scheduler
class FirstFit(Scheduler):
    """Always the lowest-numbered idle socket."""

    name = "FirstFit"

    def select_socket(self, job, idle_ids, view) -> int:
        self._require_candidates(idle_ids)
        return int(idle_ids.min())


@register_scheduler
class RoundRobin(Scheduler):
    """Rotate through socket numbers, skipping busy sockets."""

    name = "RoundRobin"

    def __init__(self) -> None:
        super().__init__()
        self._next = 0

    def reset(self, view, rng) -> None:
        super().reset(view, rng)
        self._next = 0

    def select_socket(self, job, idle_ids, view) -> int:
        self._require_candidates(idle_ids)
        # First idle socket at or after the rotation pointer.
        candidates = idle_ids[idle_ids >= self._next]
        chosen = int(
            candidates.min() if candidates.size else idle_ids.min()
        )
        self._next = (chosen + 1) % view.n_sockets
        return chosen


@register_scheduler
class LeastRecentlyUsed(Scheduler):
    """The socket that has been idle the longest."""

    name = "LRU"

    def __init__(self) -> None:
        super().__init__()
        self._last_used: np.ndarray = np.zeros(0)

    def reset(self, view, rng) -> None:
        super().reset(view, rng)
        self._last_used = np.full(view.n_sockets, -np.inf)

    def select_socket(self, job, idle_ids, view) -> int:
        self._require_candidates(idle_ids)
        chosen = int(idle_ids[int(np.argmin(self._last_used[idle_ids]))])
        self._last_used[chosen] = view.time_s
        return chosen

"""Recirculation Minimize Heat (MinHR) policy.

MinHR (Moore et al.) measures, offline, how much heat each compute
location recirculates onto the rest of the facility and then assigns
jobs to the locations that disturb others least.  In a dense server the
offline measurement is the coupling calibration: a socket's *heat
recirculation factor* is the sum of its coupling weights onto every
downwind socket.  At run time the policy picks the idle socket with the
smallest factor — which orders sockets back-to-front, since the most
downstream socket heats nobody.
"""

from __future__ import annotations

import numpy as np

from .base import Scheduler, register_scheduler


@register_scheduler
class MinHR(Scheduler):
    """Least heat-recirculation placement using the offline coupling map."""

    name = "MinHR"

    def __init__(self) -> None:
        super().__init__()
        self._hr_factor: np.ndarray = np.zeros(0)

    def reset(self, view, rng) -> None:
        super().reset(view, rng)
        coupling = view.topology.coupling
        self._hr_factor = np.array(
            [
                coupling.total_influence(socket)
                for socket in range(view.n_sockets)
            ]
        )

    def select_socket(self, job, idle_ids, view) -> int:
        self._require_candidates(idle_ids)
        factors = self._hr_factor[idle_ids]
        minimal = idle_ids[factors <= factors.min() + 1e-12]
        return int(self.rng.choice(minimal))

"""Dynamic fan control for the simulated server.

The paper provisions a fixed 400 CFM from the ActiveCool fan data and
notes that cooling must hold the outlet-inlet temperature budget
(Table II).  Real chassis modulate fan speed with load; this extension
models that: a :class:`FanController` scales the delivered airflow so
the first-law outlet temperature rise tracks a budget, within the fans'
mechanical range.  Less airflow strengthens thermal coupling (the
entry-temperature rises scale as 1/CFM) and saves cubic fan power;
more airflow does the reverse — letting experiments quantify the
cooling-performance trade-off that motivates density optimized design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ThermalModelError
from ..units import AIR_HEATING_CONSTANT
from .airflow import FanModel


@dataclass
class FanController:
    """Load-proportional airflow control.

    Every control period the controller measures total server heat and
    delivers just enough airflow to hold the outlet temperature budget,
    clamped to the fans' range.  The airflow *scale* (relative to the
    design point) divides every coupling weight and cubes into fan
    power.

    Attributes:
        design_total_cfm: Airflow at scale 1.0 (the SUT's 400 CFM).
        outlet_budget_c: Target outlet-inlet temperature rise, degC.
        min_scale: Lower bound on relative airflow (fans never stop).
        max_scale: Upper bound on relative airflow.
        fan: Fan model used for power accounting (per-server
            aggregate); ``None`` selects a default bank sized for the
            design airflow in ``__post_init__``.
        interval_s: Control period, seconds (must be positive).
    """

    design_total_cfm: float = 400.0
    outlet_budget_c: float = 20.0
    min_scale: float = 0.4
    max_scale: float = 1.25
    fan: Optional[FanModel] = None
    interval_s: float = 0.05

    def __post_init__(self) -> None:
        if self.design_total_cfm <= 0:
            raise ThermalModelError("design airflow must be positive")
        if self.outlet_budget_c <= 0:
            raise ThermalModelError("outlet budget must be positive")
        if not 0 < self.min_scale <= self.max_scale:
            raise ThermalModelError(
                "need 0 < min_scale <= max_scale"
            )
        if self.interval_s <= 0:
            raise ThermalModelError("control interval must be positive")
        if self.fan is None:
            # Aggregate server fan bank: sized so scale 1.0 sits at 80%
            # speed of the bank.
            self.fan = FanModel(
                name="server-fan-bank",
                max_cfm=self.design_total_cfm / 0.8,
                max_power_w=120.0,
            )

    def airflow_scale(self, total_heat_w: float) -> float:
        """Relative airflow needed for the current server heat."""
        if total_heat_w < 0:
            raise ThermalModelError("heat must be non-negative")
        required_cfm = (
            AIR_HEATING_CONSTANT * total_heat_w / self.outlet_budget_c
        )
        scale = required_cfm / self.design_total_cfm
        return float(np.clip(scale, self.min_scale, self.max_scale))

    def fan_power_w(self, scale: float) -> float:
        """Electrical fan power at a given airflow scale, W."""
        speed = scale * self.design_total_cfm / self.fan.max_cfm
        return self.fan.power_at(min(speed, 1.0))

    def outlet_rise_c(self, total_heat_w: float, scale: float) -> float:
        """Outlet-inlet air temperature rise at a given scale, degC."""
        cfm = scale * self.design_total_cfm
        return AIR_HEATING_CONSTANT * total_heat_w / cfm

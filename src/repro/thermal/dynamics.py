"""Two-node transient thermal dynamics.

Table III of the paper gives two time constants: an on-chip constant of
5 ms and a socket (heat-sink mass) constant of 30 s.  We model each
socket as a two-node RC ladder:

- the *sink* node represents the heat-sink and socket thermal mass; its
  steady-state temperature is ``ambient + power * r_ext`` and it relaxes
  toward that target with tau = 30 s;
- the *chip* node represents the die; its steady state is
  ``sink + power * r_int + theta(power)`` and it relaxes with tau = 5 ms.

Each step uses the exact exponential solution of the first-order ODE, so
the update is unconditionally stable for any step size — the engine can
take 1 ms power-manager steps or coarser steps without error growth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple, Optional

from ..backend import ArrayBackend, get_backend
from ..backend import numpy_xp as np
from ..errors import ThermalModelError

#: On-chip thermal time constant (Table III), seconds.
DEFAULT_CHIP_TAU_S = 0.005

#: Socket / heat-sink thermal time constant (Table III), seconds.
DEFAULT_SOCKET_TAU_S = 30.0


class WindowModes(NamedTuple):
    """Mode decomposition of a closed-form window advance.

    With frozen inputs, ``j`` decayed steps evolve the nodes as::

        sink_j = sink_const + sink_amp * sink_decay**j
        chip_j = chip_const + chip_amp * chip_decay**j
                            + cross_amp * sink_decay**j      (non-resonant)
        chip_j = chip_const + chip_amp * chip_decay**j
                            + cross_amp * j * sink_decay**j  (resonant)

    The decomposition lets callers evaluate exact exponentially-weighted
    sums over the window (e.g. the scheduler history EMA) without
    iterating the per-step recurrence.

    Attributes:
        sink_const: Sink steady state ``ambient + power * r_ext``.
        sink_amp: Sink deviation from steady state at window entry.
        chip_const: Chip steady state ``sink_const + power * r_int + theta``.
        chip_amp: Coefficient on ``chip_decay**j``.
        cross_amp: Coefficient on the sink-driven mode (see above).
        resonant: True when the two decay factors coincide and the
            sink-driven chip mode is ``j * sink_decay**j``-weighted.
    """

    sink_const: np.ndarray
    sink_amp: np.ndarray
    chip_const: np.ndarray
    chip_amp: np.ndarray
    cross_amp: np.ndarray
    resonant: bool


def advance_window_modes(
    sink_c,
    chip_c,
    sink_decay: float,
    chip_decay: float,
    n_steps: int,
    ambient_c,
    power_w,
    r_int,
    r_ext,
    theta,
):
    """Pure closed-form window advance over any array namespace.

    The functional core of :meth:`TwoNodeThermalState.advance_window`:
    elementwise operator math only, so it runs unchanged on plain numpy
    arrays, on stacked ``(N, n)`` fleet tensors (leading batch axis),
    and on traced JAX arrays — scalars ``sink_decay``/``chip_decay``/
    ``n_steps`` must stay Python numbers (static under jit).

    Returns:
        ``(sink_after, chip_after, modes)`` — the node arrays after
        ``n_steps`` decayed steps plus the :class:`WindowModes`
        decomposition evaluated at window entry.  ``n_steps == 0``
        returns the input arrays unchanged.

    Raises:
        ThermalModelError: if ``n_steps`` is negative or either decay
            factor is outside ``(0, 1)``.
    """
    n_steps = int(n_steps)
    if n_steps < 0:
        raise ThermalModelError(
            f"n_steps must be non-negative, got {n_steps}"
        )
    for name, decay in (("sink", sink_decay), ("chip", chip_decay)):
        if not 0.0 < decay < 1.0:
            raise ThermalModelError(
                f"{name}_decay must lie in (0, 1), got {decay}"
            )
    sink_const = ambient_c + power_w * r_ext
    sink_amp = sink_c - sink_const
    chip_const = sink_const + power_w * r_int + theta
    resonant = abs(sink_decay - chip_decay) <= 1e-12 * max(
        sink_decay, chip_decay
    )
    if resonant:
        cross_amp = sink_amp * (1.0 - sink_decay)
        chip_amp = chip_c - chip_const
    else:
        cross_amp = (
            sink_amp
            * ((1.0 - chip_decay) * sink_decay / (sink_decay - chip_decay))
        )
        chip_amp = chip_c - chip_const - cross_amp
    modes = WindowModes(
        sink_const, sink_amp, chip_const, chip_amp, cross_amp, resonant
    )
    if n_steps == 0:
        return sink_c, chip_c, modes
    rs_k = sink_decay**n_steps
    rc_k = chip_decay**n_steps
    if resonant:
        chip_after = (
            chip_const + chip_amp * rc_k + cross_amp * (n_steps * rs_k)
        )
    else:
        chip_after = chip_const + chip_amp * rc_k + cross_amp * rs_k
    sink_after = sink_const + sink_amp * rs_k
    return sink_after, chip_after, modes


def ema_window_sum(decay: float, ema_beta: float, n_steps: int) -> float:
    """Exact geometric EMA weight of a decaying mode over a window.

    Returns ``g(r) = sum_{j=1..k} beta**(k-j) * r**j`` for ``r = decay``,
    ``beta = ema_beta`` and ``k = n_steps`` — the total weight a mode
    ``r**j`` contributes to an EMA ``h_j = beta * h_{j-1} + (1-beta) * x_j``
    unrolled across the window (before the ``1-beta`` factor).  Uses the
    closed form ``r * (r**k - beta**k) / (r - beta)`` with the confluent
    limit ``k * r**k`` when the two rates coincide.
    """
    if n_steps <= 0:
        return 0.0
    if abs(decay - ema_beta) <= 1e-12 * max(abs(decay), abs(ema_beta)):
        return n_steps * decay**n_steps
    return decay * (decay**n_steps - ema_beta**n_steps) / (decay - ema_beta)


def exponential_step(
    current: np.ndarray,
    target: np.ndarray,
    dt_s: float,
    tau_s: float,
) -> np.ndarray:
    """One exact first-order relaxation step toward ``target``.

    Implements ``T(t+dt) = target + (T(t) - target) * exp(-dt/tau)``.

    Raises:
        ThermalModelError: if ``dt_s`` is negative or ``tau_s`` is not
            strictly positive.
    """
    if dt_s < 0:
        raise ThermalModelError(f"dt must be non-negative, got {dt_s}")
    if tau_s <= 0:
        raise ThermalModelError(f"tau must be positive, got {tau_s}")
    decay = np.exp(-dt_s / tau_s)
    return target + (current - target) * decay


@dataclass
class TwoNodeThermalState:
    """Vectorised transient state for a set of sockets.

    Attributes:
        sink_c: Heat-sink node temperatures, degC (one per socket).
        chip_c: Chip node temperatures, degC (one per socket).
        chip_tau_s: On-chip time constant, seconds.
        socket_tau_s: Heat-sink mass time constant, seconds.
    """

    sink_c: np.ndarray
    chip_c: np.ndarray
    chip_tau_s: float = DEFAULT_CHIP_TAU_S
    socket_tau_s: float = DEFAULT_SOCKET_TAU_S

    def __post_init__(self) -> None:
        self.sink_c = np.asarray(self.sink_c, dtype=float)
        self.chip_c = np.asarray(self.chip_c, dtype=float)
        if self.sink_c.shape != self.chip_c.shape:
            raise ThermalModelError(
                "sink and chip arrays must have identical shapes"
            )
        if self.chip_tau_s <= 0 or self.socket_tau_s <= 0:
            raise ThermalModelError("time constants must be positive")

    @classmethod
    def at_ambient(
        cls,
        n_sockets: int,
        ambient_c: float,
        chip_tau_s: float = DEFAULT_CHIP_TAU_S,
        socket_tau_s: float = DEFAULT_SOCKET_TAU_S,
    ) -> "TwoNodeThermalState":
        """All nodes equilibrated at the given ambient temperature."""
        if n_sockets <= 0:
            raise ThermalModelError(
                f"n_sockets must be positive, got {n_sockets}"
            )
        temps = np.full(n_sockets, float(ambient_c))
        return cls(
            sink_c=temps.copy(),
            chip_c=temps.copy(),
            chip_tau_s=chip_tau_s,
            socket_tau_s=socket_tau_s,
        )

    def step(
        self,
        dt_s: float,
        ambient_c: np.ndarray,
        power_w: np.ndarray,
        r_int: np.ndarray,
        r_ext: np.ndarray,
        theta: np.ndarray,
    ) -> None:
        """Advance both nodes by ``dt_s`` seconds in place.

        Args:
            dt_s: Step duration, seconds.
            ambient_c: Per-socket entry air temperature, degC.
            power_w: Per-socket total power, W.
            r_int: Per-socket internal resistance, degC/W.
            r_ext: Per-socket external (sink) resistance, degC/W.
            theta: Per-socket Equation 1 correction, degC.
        """
        sink_target = ambient_c + power_w * r_ext
        self.sink_c = exponential_step(
            self.sink_c, sink_target, dt_s, self.socket_tau_s
        )
        chip_target = self.sink_c + power_w * r_int + theta
        self.chip_c = exponential_step(
            self.chip_c, chip_target, dt_s, self.chip_tau_s
        )

    def step_decayed(
        self,
        sink_decay: float,
        chip_decay: float,
        ambient_c: np.ndarray,
        power_w: np.ndarray,
        r_int: np.ndarray,
        r_ext: np.ndarray,
        theta: np.ndarray,
        scratch: "np.ndarray | None" = None,
        backend: Optional[ArrayBackend] = None,
    ) -> None:
        """Advance both nodes using precomputed decay factors.

        The fixed-step engine calls the relaxation thousands of times
        with the same ``dt``; this fused variant takes the decay
        factors ``exp(-dt/tau)`` precomputed once per run and updates
        both node arrays fully in place (one scratch allocation per
        call instead of six temporaries).  It performs the identical
        floating-point operations in the identical per-element order as
        :meth:`step` with ``exponential_step``, so trajectories are
        bit-identical.

        Args:
            sink_decay: ``exp(-dt / socket_tau_s)`` for the engine step.
            chip_decay: ``exp(-dt / chip_tau_s)`` for the engine step.
            ambient_c: Per-socket entry air temperature, degC.
            power_w: Per-socket total power, W.
            r_int: Per-socket internal resistance, degC/W.
            r_ext: Per-socket external (sink) resistance, degC/W.
            theta: Per-socket Equation 1 correction, degC.
            scratch: Optional per-socket work buffer reused by the
                engine hot path (its contents are overwritten; ignored
                by non-inplace backends).
            backend: Array backend; non-inplace backends take the pure
                functional twin, which performs the same float ops in
                the same per-element order (bit-identical under numpy).
        """
        backend = get_backend(backend)
        if not backend.inplace:
            target = power_w * r_ext + ambient_c
            sink = (self.sink_c - target) * sink_decay + target
            target = power_w * r_int + sink + theta
            self.chip_c = (self.chip_c - target) * chip_decay + target
            self.sink_c = sink
            return
        # Sink node: target = ambient + power * r_ext, then
        # T <- target + (T - target) * decay, evaluated in place.
        target = np.multiply(power_w, r_ext, out=scratch)
        target += ambient_c
        sink = self.sink_c
        sink -= target
        sink *= sink_decay
        sink += target
        # Chip node over the *new* sink state:
        # target = sink + power * r_int + theta.
        np.multiply(power_w, r_int, out=target)
        target += sink
        target += theta
        chip = self.chip_c
        chip -= target
        chip *= chip_decay
        chip += target

    def advance_window(
        self,
        sink_decay: float,
        chip_decay: float,
        n_steps: int,
        ambient_c: np.ndarray,
        power_w: np.ndarray,
        r_int: np.ndarray,
        r_ext: np.ndarray,
        theta: np.ndarray,
    ) -> WindowModes:
        """Advance both nodes by ``n_steps`` decayed steps in closed form.

        Equivalent (in exact arithmetic) to calling :meth:`step_decayed`
        ``n_steps`` times with the same frozen inputs, but in O(1) work
        per socket instead of O(n_steps).  The two-node ladder is lower
        triangular — the sink ignores the chip — so the sink mode is a
        single geometric decay toward ``S = ambient + power * r_ext``
        and the chip superposes its own decay with the sink's::

            sink_k = S + D * rs**k                     D  = sink_0 - S
            chip_k = P + Q * rc**k + Dp * rs**k        P  = S + power * r_int + theta
                                                       Dp = D * (1-rc) * rs / (rs-rc)
                                                       Q  = chip_0 - P - Dp

        When the decay factors coincide (``rs == rc = r``) the partial
        fraction degenerates to the confluent (resonant) form
        ``chip_k = P + (chip_0 - P) * r**k + D * (1-r) * k * r**k``.

        Args:
            sink_decay: ``exp(-dt / socket_tau_s)`` for one engine step.
            chip_decay: ``exp(-dt / chip_tau_s)`` for one engine step.
            n_steps: Number of engine steps to advance (``>= 0``).
            ambient_c: Per-socket entry air temperature, degC (frozen).
            power_w: Per-socket total power, W (frozen).
            r_int: Per-socket internal resistance, degC/W.
            r_ext: Per-socket external (sink) resistance, degC/W.
            theta: Per-socket Equation 1 correction, degC (frozen).

        Returns:
            The :class:`WindowModes` decomposition (evaluated at window
            entry, i.e. ``j = 0``), for exact EMA updates over the window.

        Raises:
            ThermalModelError: if ``n_steps`` is negative or either decay
                factor is outside ``(0, 1)``.
        """
        self.sink_c, self.chip_c, modes = advance_window_modes(
            self.sink_c,
            self.chip_c,
            sink_decay,
            chip_decay,
            n_steps,
            ambient_c,
            power_w,
            r_int,
            r_ext,
            theta,
        )
        return modes

    def sink_heat_output_w(
        self,
        ambient_c: np.ndarray,
        r_ext: np.ndarray,
        out: "np.ndarray | None" = None,
        backend: Optional[ArrayBackend] = None,
    ) -> np.ndarray:
        """Heat currently flowing from each sink into the air stream, W.

        This is the quantity that warms downstream sockets: the coupling
        chain consumes it instead of the instantaneous electrical power,
        which gives the 30 s coupling lag the paper describes.

        Args:
            ambient_c: Per-socket entry air temperature, degC.
            r_ext: Per-socket external (sink) resistance, degC/W.
            out: Optional output buffer reused by the engine hot path
                (ignored by non-inplace backends).
            backend: Array backend; non-inplace backends take the pure
                functional twin (same ops, same order).
        """
        backend = get_backend(backend)
        if not backend.inplace:
            xp = backend.xp
            return xp.maximum((self.sink_c - ambient_c) / r_ext, 0.0)
        heat = np.subtract(self.sink_c, ambient_c, out=out)
        heat /= r_ext
        return np.maximum(heat, 0.0, out=heat)

"""Two-node transient thermal dynamics.

Table III of the paper gives two time constants: an on-chip constant of
5 ms and a socket (heat-sink mass) constant of 30 s.  We model each
socket as a two-node RC ladder:

- the *sink* node represents the heat-sink and socket thermal mass; its
  steady-state temperature is ``ambient + power * r_ext`` and it relaxes
  toward that target with tau = 30 s;
- the *chip* node represents the die; its steady state is
  ``sink + power * r_int + theta(power)`` and it relaxes with tau = 5 ms.

Each step uses the exact exponential solution of the first-order ODE, so
the update is unconditionally stable for any step size — the engine can
take 1 ms power-manager steps or coarser steps without error growth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ThermalModelError

#: On-chip thermal time constant (Table III), seconds.
DEFAULT_CHIP_TAU_S = 0.005

#: Socket / heat-sink thermal time constant (Table III), seconds.
DEFAULT_SOCKET_TAU_S = 30.0


def exponential_step(
    current: np.ndarray,
    target: np.ndarray,
    dt_s: float,
    tau_s: float,
) -> np.ndarray:
    """One exact first-order relaxation step toward ``target``.

    Implements ``T(t+dt) = target + (T(t) - target) * exp(-dt/tau)``.

    Raises:
        ThermalModelError: if ``dt_s`` is negative or ``tau_s`` is not
            strictly positive.
    """
    if dt_s < 0:
        raise ThermalModelError(f"dt must be non-negative, got {dt_s}")
    if tau_s <= 0:
        raise ThermalModelError(f"tau must be positive, got {tau_s}")
    decay = np.exp(-dt_s / tau_s)
    return target + (current - target) * decay


@dataclass
class TwoNodeThermalState:
    """Vectorised transient state for a set of sockets.

    Attributes:
        sink_c: Heat-sink node temperatures, degC (one per socket).
        chip_c: Chip node temperatures, degC (one per socket).
        chip_tau_s: On-chip time constant, seconds.
        socket_tau_s: Heat-sink mass time constant, seconds.
    """

    sink_c: np.ndarray
    chip_c: np.ndarray
    chip_tau_s: float = DEFAULT_CHIP_TAU_S
    socket_tau_s: float = DEFAULT_SOCKET_TAU_S

    def __post_init__(self) -> None:
        self.sink_c = np.asarray(self.sink_c, dtype=float)
        self.chip_c = np.asarray(self.chip_c, dtype=float)
        if self.sink_c.shape != self.chip_c.shape:
            raise ThermalModelError(
                "sink and chip arrays must have identical shapes"
            )
        if self.chip_tau_s <= 0 or self.socket_tau_s <= 0:
            raise ThermalModelError("time constants must be positive")

    @classmethod
    def at_ambient(
        cls,
        n_sockets: int,
        ambient_c: float,
        chip_tau_s: float = DEFAULT_CHIP_TAU_S,
        socket_tau_s: float = DEFAULT_SOCKET_TAU_S,
    ) -> "TwoNodeThermalState":
        """All nodes equilibrated at the given ambient temperature."""
        if n_sockets <= 0:
            raise ThermalModelError(
                f"n_sockets must be positive, got {n_sockets}"
            )
        temps = np.full(n_sockets, float(ambient_c))
        return cls(
            sink_c=temps.copy(),
            chip_c=temps.copy(),
            chip_tau_s=chip_tau_s,
            socket_tau_s=socket_tau_s,
        )

    def step(
        self,
        dt_s: float,
        ambient_c: np.ndarray,
        power_w: np.ndarray,
        r_int: np.ndarray,
        r_ext: np.ndarray,
        theta: np.ndarray,
    ) -> None:
        """Advance both nodes by ``dt_s`` seconds in place.

        Args:
            dt_s: Step duration, seconds.
            ambient_c: Per-socket entry air temperature, degC.
            power_w: Per-socket total power, W.
            r_int: Per-socket internal resistance, degC/W.
            r_ext: Per-socket external (sink) resistance, degC/W.
            theta: Per-socket Equation 1 correction, degC.
        """
        sink_target = ambient_c + power_w * r_ext
        self.sink_c = exponential_step(
            self.sink_c, sink_target, dt_s, self.socket_tau_s
        )
        chip_target = self.sink_c + power_w * r_int + theta
        self.chip_c = exponential_step(
            self.chip_c, chip_target, dt_s, self.chip_tau_s
        )

    def step_decayed(
        self,
        sink_decay: float,
        chip_decay: float,
        ambient_c: np.ndarray,
        power_w: np.ndarray,
        r_int: np.ndarray,
        r_ext: np.ndarray,
        theta: np.ndarray,
        scratch: "np.ndarray | None" = None,
    ) -> None:
        """Advance both nodes using precomputed decay factors.

        The fixed-step engine calls the relaxation thousands of times
        with the same ``dt``; this fused variant takes the decay
        factors ``exp(-dt/tau)`` precomputed once per run and updates
        both node arrays fully in place (one scratch allocation per
        call instead of six temporaries).  It performs the identical
        floating-point operations in the identical per-element order as
        :meth:`step` with ``exponential_step``, so trajectories are
        bit-identical.

        Args:
            sink_decay: ``exp(-dt / socket_tau_s)`` for the engine step.
            chip_decay: ``exp(-dt / chip_tau_s)`` for the engine step.
            ambient_c: Per-socket entry air temperature, degC.
            power_w: Per-socket total power, W.
            r_int: Per-socket internal resistance, degC/W.
            r_ext: Per-socket external (sink) resistance, degC/W.
            theta: Per-socket Equation 1 correction, degC.
            scratch: Optional per-socket work buffer reused by the
                engine hot path (its contents are overwritten).
        """
        # Sink node: target = ambient + power * r_ext, then
        # T <- target + (T - target) * decay, evaluated in place.
        target = np.multiply(power_w, r_ext, out=scratch)
        target += ambient_c
        sink = self.sink_c
        sink -= target
        sink *= sink_decay
        sink += target
        # Chip node over the *new* sink state:
        # target = sink + power * r_int + theta.
        np.multiply(power_w, r_int, out=target)
        target += sink
        target += theta
        chip = self.chip_c
        chip -= target
        chip *= chip_decay
        chip += target

    def sink_heat_output_w(
        self,
        ambient_c: np.ndarray,
        r_ext: np.ndarray,
        out: "np.ndarray | None" = None,
    ) -> np.ndarray:
        """Heat currently flowing from each sink into the air stream, W.

        This is the quantity that warms downstream sockets: the coupling
        chain consumes it instead of the instantaneous electrical power,
        which gives the 30 s coupling lag the paper describes.

        Args:
            ambient_c: Per-socket entry air temperature, degC.
            r_ext: Per-socket external (sink) resistance, degC/W.
            out: Optional output buffer reused by the engine hot path.
        """
        heat = np.subtract(self.sink_c, ambient_c, out=out)
        heat /= r_ext
        return np.maximum(heat, 0.0, out=heat)

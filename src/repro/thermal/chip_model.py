"""The paper's simplified peak chip temperature model (Equation 1).

.. math::

    T_{peak} = T_{amb} + P \\cdot (R_{int} + R_{ext})
               + \\theta(P, \\text{sink})

where :math:`R_{int}` is the chip-internal resistance (die to heat-sink
base), :math:`R_{ext}` the heat-sink external resistance, and
:math:`\\theta` an empirically fitted linear correction.  The model
ignores lateral on-die resistance, which Figure 9 of the paper shows is
justified for the ~100 mm^2 Opteron X2150 die (hot-cold spreads of only
4-7 degC).  Figure 10 validates this model to within 2 degC of a detailed
reference model; our reproduction of that validation lives in
:mod:`repro.experiments.fig10_model_validation`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ThermalModelError
from .heatsink import HeatSink

#: Chip internal thermal resistance from Table III, degC/W.
DEFAULT_R_INT = 0.205


def peak_temperature(
    ambient_c: float,
    power_w: float,
    sink: HeatSink,
    r_int: float = DEFAULT_R_INT,
) -> float:
    """Steady-state peak chip temperature per Equation 1.

    Args:
        ambient_c: Socket ambient (entry air) temperature, degC.
        power_w: Total socket power, W.
        sink: Heat sink installed on the socket.
        r_int: Chip internal thermal resistance, degC/W.

    Returns:
        Peak die temperature in degC.

    Raises:
        ThermalModelError: for negative power or non-positive resistance.
    """
    if power_w < 0:
        raise ThermalModelError(f"power must be non-negative, got {power_w}")
    if r_int <= 0:
        raise ThermalModelError(f"r_int must be positive, got {r_int}")
    return ambient_c + power_w * (r_int + sink.r_ext) + sink.theta(power_w)


@dataclass(frozen=True)
class SimplifiedChipModel:
    """Equation 1 bound to a specific heat sink, with vectorised helpers.

    The simulation engine evaluates this model on whole arrays of sockets
    at every power-management tick, so the array entry points avoid any
    per-socket Python work.

    Attributes:
        sink: Heat sink the model is parameterised for.
        r_int: Chip internal resistance, degC/W.
    """

    sink: HeatSink
    r_int: float = DEFAULT_R_INT

    def __post_init__(self) -> None:
        if self.r_int <= 0:
            raise ThermalModelError(
                f"r_int must be positive, got {self.r_int}"
            )

    @property
    def r_total(self) -> float:
        """Total die-to-air resistance, degC/W."""
        return self.r_int + self.sink.r_ext

    def peak_temperature(self, ambient_c: float, power_w: float) -> float:
        """Scalar peak temperature; see :func:`peak_temperature`."""
        return peak_temperature(ambient_c, power_w, self.sink, self.r_int)

    def peak_temperature_array(
        self, ambient_c: np.ndarray, power_w: np.ndarray
    ) -> np.ndarray:
        """Vectorised Equation 1 over arrays of ambients and powers."""
        theta = self.sink.theta_offset + self.sink.theta_slope * power_w
        return ambient_c + power_w * self.r_total + theta

    def max_power_for_limit(
        self, ambient_c: float, limit_c: float
    ) -> float:
        """Largest power that keeps the peak temperature at or below a limit.

        Inverts Equation 1 analytically.  Returns 0 if even an idle chip
        would exceed the limit.
        """
        denom = self.r_total + self.sink.theta_slope
        if denom <= 0:
            raise ThermalModelError(
                "degenerate model: resistance cancelled by theta slope"
            )
        power = (limit_c - ambient_c - self.sink.theta_offset) / denom
        return max(power, 0.0)

    def ambient_for_limit(self, power_w: float, limit_c: float) -> float:
        """Largest ambient temperature that keeps the chip under a limit."""
        if power_w < 0:
            raise ThermalModelError(
                f"power must be non-negative, got {power_w}"
            )
        return limit_c - power_w * self.r_total - self.sink.theta(power_w)

"""Airflow requirements and fan modeling (paper Table II).

The paper derives total server airflow from the hot-aisle constraint: the
outlet-inlet air temperature difference must not exceed ~20 degC (ASHRAE
TC 9.9; Facebook runs 29 degC inlets with up to 49 degC hot aisles).  The
required airflow follows from the first law of thermodynamics, and
Table II lists the result for each server class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import ThermalModelError
from ..units import airflow_for_power

#: Default outlet-inlet temperature budget, degC (ASHRAE / Facebook).
DEFAULT_DELTA_T_C = 20.0

#: Average power per 1U by server class (paper Section I / Table II), W.
SERVER_CLASS_POWER_PER_U: Dict[str, float] = {
    "1U": 208.0,
    "2U": 147.0,
    "Other": 114.0,
    "Blade": 421.0,
    "DensityOpt": 588.0,
}


def server_airflow_requirement(
    power_per_u_w: float, delta_t_c: float = DEFAULT_DELTA_T_C
) -> float:
    """Airflow in CFM per 1U needed to hold the outlet temperature budget.

    Matches Table II: 208 W -> 18.30 CFM, 147 -> 12.94, 114 -> 10.03,
    421 -> 37.05, 588 -> 51.74 (all at delta_t = 20 degC).
    """
    return airflow_for_power(power_per_u_w, delta_t_c)


def airflow_table(
    delta_t_c: float = DEFAULT_DELTA_T_C,
) -> List[Tuple[str, float, float]]:
    """Reproduce Table II as (server class, power/U, CFM/U) rows."""
    return [
        (name, power, server_airflow_requirement(power, delta_t_c))
        for name, power in SERVER_CLASS_POWER_PER_U.items()
    ]


@dataclass(frozen=True)
class FanModel:
    """A simple high-end server fan similar to the HP ActiveCool design.

    The ActiveCool fan the paper references can deliver high static
    pressure airflow at reasonable power.  We model the delivered flow as
    a linear function of fan speed with a cubic power law, which is the
    standard affinity-law approximation.

    Attributes:
        name: Identifier of the fan.
        max_cfm: Flow delivered at 100% speed, CFM.
        max_power_w: Electrical power drawn at 100% speed, W.
    """

    name: str = "ActiveCool-like"
    max_cfm: float = 100.0
    max_power_w: float = 35.0

    def __post_init__(self) -> None:
        if self.max_cfm <= 0:
            raise ThermalModelError(
                f"max_cfm must be positive, got {self.max_cfm}"
            )
        if self.max_power_w <= 0:
            raise ThermalModelError(
                f"max_power_w must be positive, got {self.max_power_w}"
            )

    def flow_at(self, speed_fraction: float) -> float:
        """Delivered airflow (CFM) at a fan speed in [0, 1]."""
        self._check_speed(speed_fraction)
        return self.max_cfm * speed_fraction

    def power_at(self, speed_fraction: float) -> float:
        """Electrical power (W) at a fan speed in [0, 1] (affinity law)."""
        self._check_speed(speed_fraction)
        return self.max_power_w * speed_fraction**3

    def speed_for_flow(self, cfm: float) -> float:
        """Fan speed fraction needed to deliver ``cfm``.

        Raises:
            ThermalModelError: if the request exceeds the fan's capacity.
        """
        if cfm < 0:
            raise ThermalModelError(f"flow must be non-negative, got {cfm}")
        if cfm > self.max_cfm:
            raise ThermalModelError(
                f"requested {cfm} CFM exceeds fan capacity {self.max_cfm}"
            )
        return cfm / self.max_cfm

    @staticmethod
    def _check_speed(speed_fraction: float) -> None:
        if not 0.0 <= speed_fraction <= 1.0:
            raise ThermalModelError(
                f"fan speed must be in [0, 1], got {speed_fraction}"
            )


def fans_for_server(
    total_cfm: float, fan: FanModel, utilization: float = 0.8
) -> int:
    """Number of fans needed to provision ``total_cfm``.

    Fans are sized to run at ``utilization`` of max speed at peak demand,
    leaving headroom for altitude and filter aging.

    Raises:
        ThermalModelError: if inputs are out of range.
    """
    if total_cfm < 0:
        raise ThermalModelError(f"flow must be non-negative, got {total_cfm}")
    if not 0.0 < utilization <= 1.0:
        raise ThermalModelError(
            f"utilization must be in (0, 1], got {utilization}"
        )
    per_fan = fan.max_cfm * utilization
    count = int(total_cfm // per_fan)
    if count * per_fan < total_cfm:
        count += 1
    return max(count, 1)

"""Heat sink models for the M700-like cartridge.

The paper's system under test uses two heat sink designs to partially
compensate for inter-socket thermal coupling: upstream sockets (cool air)
get an 18-fin sink while downstream sockets (pre-heated air) get a better
30-fin sink.  Table III of the paper provides the external thermal
resistance of each sink and an empirically fitted linear correction term
:math:`\\theta(P)` used by the simplified peak temperature model.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ThermalModelError


@dataclass(frozen=True)
class HeatSink:
    """A finned heat sink characterised for the simplified chip model.

    Attributes:
        name: Human readable identifier (e.g. ``"18-fin"``).
        fin_count: Number of fins; more fins means lower external
            resistance (better heat transfer into the air stream).
        r_ext: External thermal resistance from heat-sink base to ambient
            air, in degC/W (Table III).
        theta_offset: Constant part of the empirical correction
            :math:`\\theta(P) = \\theta_0 + \\theta_1 P`, in degC.
        theta_slope: Power-dependent part of :math:`\\theta`, in degC/W.
    """

    name: str
    fin_count: int
    r_ext: float
    theta_offset: float
    theta_slope: float

    def __post_init__(self) -> None:
        if self.fin_count <= 0:
            raise ThermalModelError(
                f"fin_count must be positive, got {self.fin_count}"
            )
        if self.r_ext <= 0:
            raise ThermalModelError(f"r_ext must be positive, got {self.r_ext}")

    def theta(self, power_w: float) -> float:
        """Empirical correction term of Equation 1, in degC.

        The fitted form is linear in power; for the paper's sinks the
        slope is negative, so the correction shrinks as power grows.
        """
        if power_w < 0:
            raise ThermalModelError(
                f"power must be non-negative, got {power_w}"
            )
        return self.theta_offset + self.theta_slope * power_w


#: Upstream heat sink of the M700 cartridge (Table III).
FIN_18 = HeatSink(
    name="18-fin",
    fin_count=18,
    r_ext=1.578,
    theta_offset=4.41,
    theta_slope=-0.0896,
)

#: Downstream (better) heat sink of the M700 cartridge (Table III).
FIN_30 = HeatSink(
    name="30-fin",
    fin_count=30,
    r_ext=1.056,
    theta_offset=4.45,
    theta_slope=-0.0916,
)


def sink_for_zone(zone: int) -> HeatSink:
    """Heat sink installed in a given SUT zone (1-based, Figure 12).

    Odd zones sit at the front of each cartridge and use the 18-fin sink;
    even zones sit downstream and use the 30-fin sink.

    Raises:
        ThermalModelError: if ``zone`` is not a positive integer.
    """
    if zone < 1:
        raise ThermalModelError(f"zone must be >= 1, got {zone}")
    return FIN_18 if zone % 2 == 1 else FIN_30

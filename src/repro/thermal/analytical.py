"""Analytical model of socket entry temperature (paper Section II-B).

The paper builds a closed-form heat-transfer model to study how socket
power, per-socket airflow and the *degree of coupling* shape the air
temperature arriving at each socket.  The degree of coupling ``D`` is the
maximum number of sockets that a fully upstream socket can thermally
influence, i.e. a chain of ``D + 1`` sockets share one air stream.

With every socket consuming ``P`` watts and per-socket airflow ``V`` CFM,
the entry temperature of the k-th socket in the chain (k = 0 upstream) is

.. math::

    T_{entry}[k] = T_{inlet} + k \\cdot 1.76 \\cdot P / V

This module reproduces Figure 5: mean entry temperature and the
coefficient of variation of entry temperatures as functions of the degree
of coupling for a grid of socket powers and airflow levels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ThermalModelError
from ..units import AIR_HEATING_CONSTANT

#: Default server inlet temperature (Table III), degC.
DEFAULT_INLET_C = 18.0


def entry_temperature_profile(
    degree_of_coupling: int,
    power_w: float,
    airflow_cfm: float,
    inlet_c: float = DEFAULT_INLET_C,
    mixing_factor: float = 1.0,
) -> np.ndarray:
    """Entry temperatures along a coupled chain, upstream first.

    Args:
        degree_of_coupling: Number of downstream sockets influenced by
            the most upstream socket; the chain has ``degree + 1``
            sockets.
        power_w: Power of every socket in the chain, W.
        airflow_cfm: Airflow over each socket, CFM.
        inlet_c: Server inlet air temperature, degC.
        mixing_factor: Optional local mixing factor (1.0 reproduces the
            paper's well-mixed analytical model).

    Returns:
        Array of ``degree + 1`` entry temperatures in degC.

    Raises:
        ThermalModelError: for out-of-range inputs.
    """
    if degree_of_coupling < 0:
        raise ThermalModelError(
            f"degree of coupling must be >= 0, got {degree_of_coupling}"
        )
    if power_w < 0:
        raise ThermalModelError(f"power must be non-negative, got {power_w}")
    if airflow_cfm <= 0:
        raise ThermalModelError(
            f"airflow must be positive, got {airflow_cfm}"
        )
    if mixing_factor <= 0:
        raise ThermalModelError(
            f"mixing factor must be positive, got {mixing_factor}"
        )
    per_socket_rise = (
        mixing_factor * AIR_HEATING_CONSTANT * power_w / airflow_cfm
    )
    positions = np.arange(degree_of_coupling + 1, dtype=float)
    return inlet_c + positions * per_socket_rise


@dataclass(frozen=True)
class EntryTemperatureStatistics:
    """Summary statistics of a chain's entry temperature profile.

    Attributes:
        mean_c: Mean socket entry temperature, degC.
        std_c: Standard deviation across sockets, degC.
        cov: Coefficient of variation (std / mean) of the absolute entry
            temperatures, the metric Figure 5(b) plots.
        max_c: Entry temperature of the most downstream socket, degC.
        mean_rise_c: Mean entry temperature rise above inlet, degC.
    """

    mean_c: float
    std_c: float
    cov: float
    max_c: float
    mean_rise_c: float


def entry_temperature_statistics(
    degree_of_coupling: int,
    power_w: float,
    airflow_cfm: float,
    inlet_c: float = DEFAULT_INLET_C,
    mixing_factor: float = 1.0,
) -> EntryTemperatureStatistics:
    """Figure 5 statistics for one (degree, power, airflow) design point."""
    profile = entry_temperature_profile(
        degree_of_coupling, power_w, airflow_cfm, inlet_c, mixing_factor
    )
    mean = float(profile.mean())
    std = float(profile.std())
    return EntryTemperatureStatistics(
        mean_c=mean,
        std_c=std,
        cov=std / mean if mean > 0 else 0.0,
        max_c=float(profile.max()),
        mean_rise_c=mean - inlet_c,
    )


@dataclass(frozen=True)
class EntryTemperatureModel:
    """Sweep helper that evaluates the analytical model over a design grid.

    Attributes:
        inlet_c: Server inlet temperature, degC.
        mixing_factor: Local mixing factor applied to the first-law rise.
    """

    inlet_c: float = DEFAULT_INLET_C
    mixing_factor: float = 1.0

    def sweep(
        self,
        degrees: Sequence[int],
        powers_w: Sequence[float],
        airflows_cfm: Sequence[float],
    ) -> list:
        """Evaluate every (degree, power, airflow) combination.

        Returns:
            A list of dictionaries, one per design point, with keys
            ``degree``, ``power_w``, ``airflow_cfm``, ``mean_entry_c``,
            ``cov`` and ``max_entry_c`` — the series Figure 5 plots.
        """
        rows = []
        for degree in degrees:
            for power in powers_w:
                for airflow in airflows_cfm:
                    stats = entry_temperature_statistics(
                        degree,
                        power,
                        airflow,
                        self.inlet_c,
                        self.mixing_factor,
                    )
                    rows.append(
                        {
                            "degree": degree,
                            "power_w": power,
                            "airflow_cfm": airflow,
                            "mean_entry_c": stats.mean_c,
                            "cov": stats.cov,
                            "max_entry_c": stats.max_c,
                        }
                    )
        return rows

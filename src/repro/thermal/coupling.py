"""Inter-socket thermal coupling along the airflow direction.

This module replaces the paper's Ansys Icepak CFD model with a
first-law air-heating chain.  Air enters a lane of sockets at the server
inlet temperature and is heated by each socket it passes over:

.. math::

    T_{entry}[k] = T_{inlet} + \\sum_{j<k} w_{jk} \\cdot q_j

where :math:`q_j` is the heat leaving socket *j*'s heat sink and the
weight :math:`w_{jk}` combines three effects:

- the first-law rise ``1.76 / CFM`` per watt,
- a local *mixing factor* kappa > 1, because the air layer hugging the
  heat sink is much hotter than the well-mixed mean (the paper's CFD
  measured an 8 degC rise downstream of a 15 W socket for a single open
  cartridge, which the well-mixed value of 4.2 degC already
  under-predicts; inside the closed, stacked chassis the paper's Icepak
  model produced ambients hot enough to throttle downstream zones below
  the sustained frequency — Figure 13 — which requires kappa ~= 5 in
  this chain model; see DESIGN.md for the calibration argument), and
- a relaxation of the excess air temperature toward inlet across the
  physical gap between sockets (bypass air mixes in).  Sockets within a
  cartridge are 1.6 inches apart; adjacent cartridges are ~3 inches
  apart, so inter-cartridge decay is stronger, giving the asymmetric
  coupling Figure 12 describes.

Coupling is strictly uni-directional: a socket never affects sockets
upstream of it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from ..errors import ThermalModelError
from ..units import AIR_HEATING_CONSTANT

#: Mixing factor calibrated so the SUT reproduces the paper's observed
#: throttling regime (Figure 13): downstream zones lose boost headroom
#: at moderate load and throttle below the sustained frequency at high
#: load.  See the module docstring and DESIGN.md for the rationale.
DEFAULT_MIXING_FACTOR = 3.6

#: Mixing factor matching the single-cartridge CFD anecdote of Section
#: II (8 degC downstream rise at 15 W and 6.35 CFM) — the appropriate
#: value for open, unstacked cartridge studies.
CARTRIDGE_MIXING_FACTOR = 1.92

#: Excess-temperature retention across an intra-cartridge gap (1.6 in).
#: Hot exhaust barely relaxes over these distances inside the closed
#: chassis, so the default keeps the full excess; lower values are
#: exposed for ablation studies.
DEFAULT_INTRA_CARTRIDGE_DECAY = 1.0

#: Excess-temperature retention across an inter-cartridge gap (~3 in).
DEFAULT_INTER_CARTRIDGE_DECAY = 1.0


@dataclass(frozen=True)
class CouplingChain:
    """One lane of thermally coupled sockets along the airflow direction.

    Attributes:
        socket_ids: Global socket indices in airflow order (upstream
            first).
        airflow_cfm: Airflow over each socket of this lane, CFM.
        mixing_factor: Local mixing factor kappa (dimensionless, >= 1
            means the boundary layer is hotter than the mean).
        gap_decays: Retention factor of the excess air temperature across
            the gap *before* each position; index 0 is the inlet gap and
            is always 1.0.  Length must equal ``len(socket_ids)``.
    """

    socket_ids: Sequence[int]
    airflow_cfm: float
    mixing_factor: float = DEFAULT_MIXING_FACTOR
    gap_decays: Sequence[float] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.socket_ids:
            raise ThermalModelError("a coupling chain needs >= 1 socket")
        if self.airflow_cfm <= 0:
            raise ThermalModelError(
                f"airflow must be positive, got {self.airflow_cfm}"
            )
        if self.mixing_factor <= 0:
            raise ThermalModelError(
                f"mixing factor must be positive, got {self.mixing_factor}"
            )
        decays = tuple(self.gap_decays) or (1.0,) * len(self.socket_ids)
        if len(decays) != len(self.socket_ids):
            raise ThermalModelError(
                "gap_decays must match socket_ids in length"
            )
        if any(not 0.0 <= d <= 1.0 for d in decays):
            raise ThermalModelError("gap decays must lie in [0, 1]")
        if decays[0] != 1.0:
            raise ThermalModelError("the inlet gap decay must be 1.0")
        object.__setattr__(self, "gap_decays", decays)

    @property
    def degree_of_coupling(self) -> int:
        """Number of sockets a fully upstream socket can influence."""
        return len(self.socket_ids) - 1

    def weights(self) -> np.ndarray:
        """Lower-triangular weight matrix ``w[k, j]`` for this chain.

        ``w[k, j]`` is the degC of entry-temperature rise at local
        position ``k`` per watt of heat leaving local position ``j``
        (zero for ``j >= k``).

        The retention of source ``j`` at position ``k`` is the left-to-
        right product of the gap decays between them, so each source
        column is one cumulative product down the remaining chain —
        vectorising the historical triple loop while multiplying in the
        same order (bit-identical weights).
        """
        n = len(self.socket_ids)
        per_watt = (
            self.mixing_factor * AIR_HEATING_CONSTANT / self.airflow_cfm
        )
        decays = np.asarray(self.gap_decays, dtype=float)
        weights = np.zeros((n, n))
        for j in range(n - 1):
            retention = np.cumprod(decays[j + 1 :])
            weights[j + 1 :, j] = per_watt * retention
        return weights


class CouplingMatrix:
    """Whole-server linear map from sink heat output to entry temperature.

    Entry temperatures are ``T_inlet + M @ q`` where ``q`` holds per-socket
    sink heat outputs in watts.  ``M`` is assembled from independent
    :class:`CouplingChain` lanes; sockets in different lanes never couple
    (the paper's CFD confirms cross-lane effects are small).
    """

    def __init__(self, n_sockets: int, chains: Sequence[CouplingChain]):
        if n_sockets <= 0:
            raise ThermalModelError(
                f"n_sockets must be positive, got {n_sockets}"
            )
        self._n = n_sockets
        self._matrix = np.zeros((n_sockets, n_sockets))
        seen: set = set()
        for chain in chains:
            ids = list(chain.socket_ids)
            for socket_id in ids:
                if not 0 <= socket_id < n_sockets:
                    raise ThermalModelError(
                        f"socket id {socket_id} out of range 0..{n_sockets - 1}"
                    )
                if socket_id in seen:
                    raise ThermalModelError(
                        f"socket {socket_id} appears in two chains"
                    )
                seen.add(socket_id)
            local = chain.weights()
            idx = np.asarray(ids)
            self._matrix[np.ix_(idx, idx)] = local
        self._downwind: List[np.ndarray] = [
            np.nonzero(self._matrix[:, j])[0] for j in range(n_sockets)
        ]

    @property
    def n_sockets(self) -> int:
        """Number of sockets covered by this matrix."""
        return self._n

    @property
    def matrix(self) -> np.ndarray:
        """Read-only view of the (n, n) coupling weight matrix."""
        view = self._matrix.view()
        view.flags.writeable = False
        return view

    def entry_temperatures(
        self, inlet_c: float, sink_heat_w: np.ndarray
    ) -> np.ndarray:
        """Per-socket entry air temperatures for the given heat outputs."""
        heat = np.asarray(sink_heat_w, dtype=float)
        if heat.shape != (self._n,):
            raise ThermalModelError(
                f"expected heat vector of shape ({self._n},), got {heat.shape}"
            )
        return inlet_c + self._matrix @ heat

    def downwind_of(self, socket_id: int) -> np.ndarray:
        """Indices of sockets thermally influenced by ``socket_id``."""
        if not 0 <= socket_id < self._n:
            raise ThermalModelError(
                f"socket id {socket_id} out of range 0..{self._n - 1}"
            )
        return self._downwind[socket_id]

    def influence_on(self, downstream: int, upstream: int) -> float:
        """Weight (degC/W) of ``upstream`` on ``downstream``'s entry air."""
        return float(self._matrix[downstream, upstream])

    def total_influence(self, socket_id: int) -> float:
        """Sum of a socket's coupling weights onto every downwind socket.

        MinHR uses this as the offline heat-recirculation factor: sockets
        with lower total influence disturb the rest of the server less.
        """
        if not 0 <= socket_id < self._n:
            raise ThermalModelError(
                f"socket id {socket_id} out of range 0..{self._n - 1}"
            )
        return float(self._matrix[:, socket_id].sum())

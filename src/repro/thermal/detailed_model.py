"""Detailed multi-node chip thermal model (reference for Figures 9 / 10).

The paper validates its simplified Equation 1 model against a proprietary
HotSpot-like model that was itself validated with thermal-camera
measurements.  We cannot use that model, so this module provides a
physically structured substitute: a steady-state RC network over a
floorplan of the AMD Opteron X2150-like die (a ~100 mm^2 Kabini APU with
four small CPU cores, an L2, a GPU and uncore blocks), with

- per-block vertical resistances into an isothermal heat spreader (small
  blocks see higher resistance, following an area-spreading law),
- lateral block-to-block resistances derived from the die geometry, and
- a power-dependent convection resistance from the sink base to ambient
  that captures the same empirical behaviour Equation 1's theta term fits.

The model reproduces the two properties Figure 9 reports — hot/cold-spot
spreads of only 4-7 degC on this small die, and the 30-fin sink running
6-7 degC cooler than the 18-fin sink at high power (3-4 degC at low
power) — and serves as the reference against which Figure 10 checks that
Equation 1 is accurate to within ~2 degC.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

from ..backend import ArrayBackend, get_backend
from ..backend import numpy_xp as np
from ..errors import ThermalModelError
from .chip_model import DEFAULT_R_INT
from .heatsink import HeatSink
from .rc_network import FactorizedSystem, ThermalNetwork

#: Retained LU factorizations per model instance.  The convection edge
#: is the only power-dependent conductance, so the cache is keyed on
#: ``(backend.cache_token, g_conv)``; sweeps that revisit the same total
#: power (Fig. 9/10 grids, steady-state iteration) hit the cache and
#: only pay back-substitution, while a backend switch mid-process can
#: never be served a foreign backend's factorization.
FACTOR_CACHE_MAX = 64


@dataclass(frozen=True)
class FloorplanBlock:
    """A rectangular block of the die floorplan.

    Attributes:
        name: Block identifier (e.g. ``"core0"``).
        x_mm: Left edge, mm.
        y_mm: Bottom edge, mm.
        width_mm: Width, mm.
        height_mm: Height, mm.
    """

    name: str
    x_mm: float
    y_mm: float
    width_mm: float
    height_mm: float

    def __post_init__(self) -> None:
        if self.width_mm <= 0 or self.height_mm <= 0:
            raise ThermalModelError(
                f"block {self.name!r} must have positive dimensions"
            )

    @property
    def area_mm2(self) -> float:
        """Block area in mm^2."""
        return self.width_mm * self.height_mm

    @property
    def center(self) -> Tuple[float, float]:
        """Block centroid (x, y) in mm."""
        return (
            self.x_mm + self.width_mm / 2.0,
            self.y_mm + self.height_mm / 2.0,
        )

    def shared_edge_mm(self, other: "FloorplanBlock") -> float:
        """Length of the shared boundary with another block (0 if none)."""
        tol = 1e-9
        # Vertical adjacency (this block beside the other).
        if (
            abs(self.x_mm + self.width_mm - other.x_mm) < tol
            or abs(other.x_mm + other.width_mm - self.x_mm) < tol
        ):
            low = max(self.y_mm, other.y_mm)
            high = min(
                self.y_mm + self.height_mm, other.y_mm + other.height_mm
            )
            return max(high - low, 0.0)
        # Horizontal adjacency (this block above/below the other).
        if (
            abs(self.y_mm + self.height_mm - other.y_mm) < tol
            or abs(other.y_mm + other.height_mm - self.y_mm) < tol
        ):
            low = max(self.x_mm, other.x_mm)
            high = min(
                self.x_mm + self.width_mm, other.x_mm + other.width_mm
            )
            return max(high - low, 0.0)
        return 0.0


def kabini_floorplan() -> Tuple[FloorplanBlock, ...]:
    """A 10 mm x 10 mm floorplan of the X2150-like Kabini die.

    Four Jaguar cores along the top edge, an L2 slice below them, a large
    GPU in the middle, and uncore / IO strips at the bottom — roughly the
    published die organisation at ~100 mm^2.
    """
    blocks = [
        FloorplanBlock("core0", 0.0, 8.0, 2.5, 2.0),
        FloorplanBlock("core1", 2.5, 8.0, 2.5, 2.0),
        FloorplanBlock("core2", 5.0, 8.0, 2.5, 2.0),
        FloorplanBlock("core3", 7.5, 8.0, 2.5, 2.0),
        FloorplanBlock("l2", 0.0, 6.5, 10.0, 1.5),
        FloorplanBlock("gpu", 0.0, 2.5, 10.0, 4.0),
        FloorplanBlock("uncore", 0.0, 1.0, 10.0, 1.5),
        FloorplanBlock("io", 0.0, 0.0, 10.0, 1.0),
    ]
    return tuple(blocks)


#: Silicon lateral sheet resistivity used for block-to-block resistances,
#: degC * mm / W.  Derived from k_si ~ 150 W/(m K) at ~0.45 mm effective
#: spreading thickness.
DEFAULT_LATERAL_RESISTIVITY = 14.8

#: Exponent of the area-spreading law for per-block vertical resistance:
#: r_v(block) = R_int * (A_die / A_block) ** beta.  beta = 1 would be pure
#: area scaling (no spreading in the package); real packages spread
#: strongly, so beta < 1.
DEFAULT_SPREADING_EXPONENT = 0.82

#: Spreader-to-sink-base interface resistance, degC/W.
DEFAULT_SPREADER_RESISTANCE = 0.04

#: Convection excess term: R_conv = R_ext + CONV_A / (P + CONV_P0).  This
#: captures the empirically observed constant-ish offset that Equation 1
#: fits with its theta(P) term.
DEFAULT_CONV_A = 0.6
DEFAULT_CONV_P0 = 2.0


@dataclass(frozen=True)
class DetailedChipResult:
    """Steady-state solution of the detailed model for one scenario.

    Attributes:
        block_temperatures_c: Temperature of each floorplan block, degC.
        spreader_c: Heat spreader temperature, degC.
        sink_base_c: Heat-sink base temperature, degC.
    """

    block_temperatures_c: Mapping[str, float]
    spreader_c: float
    sink_base_c: float

    @property
    def max_temperature_c(self) -> float:
        """Hottest block temperature (the chip peak), degC."""
        return max(self.block_temperatures_c.values())

    @property
    def min_temperature_c(self) -> float:
        """Coolest block temperature, degC."""
        return min(self.block_temperatures_c.values())

    @property
    def spread_c(self) -> float:
        """Hot-spot minus cold-spot temperature difference, degC."""
        return self.max_temperature_c - self.min_temperature_c

    @property
    def hottest_block(self) -> str:
        """Name of the hottest floorplan block."""
        return max(
            self.block_temperatures_c, key=self.block_temperatures_c.get
        )


class DetailedChipModel:
    """Reference steady-state chip model over a floorplan RC network."""

    def __init__(
        self,
        sink: HeatSink,
        floorplan: Sequence[FloorplanBlock] = (),
        r_int: float = DEFAULT_R_INT,
        lateral_resistivity: float = DEFAULT_LATERAL_RESISTIVITY,
        spreading_exponent: float = DEFAULT_SPREADING_EXPONENT,
        spreader_resistance: float = DEFAULT_SPREADER_RESISTANCE,
        conv_a: float = DEFAULT_CONV_A,
        conv_p0: float = DEFAULT_CONV_P0,
        backend: Optional[ArrayBackend] = None,
    ):
        self._backend = get_backend(backend)
        if r_int <= 0:
            raise ThermalModelError(f"r_int must be positive, got {r_int}")
        if lateral_resistivity <= 0:
            raise ThermalModelError("lateral resistivity must be positive")
        if not 0.0 <= spreading_exponent <= 1.0:
            raise ThermalModelError(
                "spreading exponent must lie in [0, 1]"
            )
        self.sink = sink
        self.floorplan: Tuple[FloorplanBlock, ...] = (
            tuple(floorplan) if floorplan else kabini_floorplan()
        )
        names = [b.name for b in self.floorplan]
        if len(set(names)) != len(names):
            raise ThermalModelError("floorplan block names must be unique")
        self.r_int = r_int
        self.lateral_resistivity = lateral_resistivity
        self.spreading_exponent = spreading_exponent
        self.spreader_resistance = spreader_resistance
        self.conv_a = conv_a
        self.conv_p0 = conv_p0
        self._init_kernel()

    def _init_kernel(self) -> None:
        """Precompute the power-independent part of the conductance matrix.

        The network structure is fixed at construction; only the
        sink-base-to-ambient convection conductance depends on the power
        map.  The base matrix accumulates every other edge in the exact
        order :meth:`solve_via_network` adds them, so adding the
        convection contributions afterwards reproduces the reference
        assembly bit for bit (the deferred edge touches only cells the
        base matrix leaves at their pre-convection partial sums).
        """
        names = ["ambient", "spreader", "sink_base"] + [
            b.name for b in self.floorplan
        ]
        index = {name: i for i, name in enumerate(names)}
        n = len(names)
        base = np.zeros((n, n))

        def accumulate(i: int, j: int, resistance: float) -> None:
            g = 1.0 / resistance
            base[i, i] += g
            base[j, j] += g
            base[i, j] -= g
            base[j, i] -= g

        accumulate(
            index["spreader"], index["sink_base"], self.spreader_resistance
        )
        # The sink_base <-> ambient convection edge is added per solve.
        for block in self.floorplan:
            accumulate(
                index[block.name],
                index["spreader"],
                self._vertical_resistance(block),
            )
        for i, a in enumerate(self.floorplan):
            for b in self.floorplan[i + 1 :]:
                edge = a.shared_edge_mm(b)
                if edge > 0:
                    accumulate(
                        index[a.name],
                        index[b.name],
                        self._lateral_resistance(a, b, edge),
                    )
        self._node_index = index
        self._n_nodes = n
        self._base_conductance = base
        self._factor_cache: "OrderedDict[Tuple[str, float], FactorizedSystem]" = (
            OrderedDict()
        )

    @property
    def die_area_mm2(self) -> float:
        """Total floorplan area, mm^2."""
        return sum(b.area_mm2 for b in self.floorplan)

    def _vertical_resistance(self, block: FloorplanBlock) -> float:
        ratio = self.die_area_mm2 / block.area_mm2
        return self.r_int * ratio**self.spreading_exponent

    def _lateral_resistance(
        self, a: FloorplanBlock, b: FloorplanBlock, edge_mm: float
    ) -> float:
        ax, ay = a.center
        bx, by = b.center
        distance = ((ax - bx) ** 2 + (ay - by) ** 2) ** 0.5
        return self.lateral_resistivity * distance / edge_mm

    def _validate_powers(self, block_power_w: Mapping[str, float]) -> None:
        known = {b.name for b in self.floorplan}
        for name, power in block_power_w.items():
            if name not in known:
                raise ThermalModelError(f"unknown floorplan block {name!r}")
            if power < 0:
                raise ThermalModelError(
                    f"power for block {name!r} must be non-negative"
                )

    def solve(
        self,
        ambient_c: float,
        block_power_w: Mapping[str, float],
        backend: Optional[ArrayBackend] = None,
    ) -> DetailedChipResult:
        """Solve for block temperatures given a per-block power map.

        Fast path: reuses the precomputed base conductance matrix and an
        LRU cache of LU factorizations keyed on ``(backend cache token,
        convection conductance)`` — bit-identical to
        :meth:`solve_via_network`, which rebuilds the full
        :class:`~repro.thermal.rc_network.ThermalNetwork` every call.

        Args:
            ambient_c: Entry air temperature at the socket, degC.
            block_power_w: Heat injected into each block, W.  Blocks not
                listed inject zero.
            backend: Per-call backend override; defaults to the model's
                construction-time backend.  Factorizations are cached
                per backend identity, so alternating backends on one
                model never reuses a foreign backend's factorization.

        Raises:
            ThermalModelError: if a power key names an unknown block or
                any power is negative.
        """
        backend = self._backend if backend is None else get_backend(backend)
        self._validate_powers(block_power_w)
        total_power = sum(block_power_w.values())
        r_conv = self.sink.r_ext + self.conv_a / (total_power + self.conv_p0)
        g_conv = 1.0 / r_conv

        cache_key = (backend.cache_token, g_conv)
        system = self._factor_cache.get(cache_key)
        if system is None:
            conductance = self._base_conductance.copy()
            # sink_base (2) <-> ambient (0) convection edge, in the same
            # accumulation order as ThermalNetwork assembly.
            conductance[2, 2] += g_conv
            conductance[0, 0] += g_conv
            conductance[2, 0] -= g_conv
            conductance[0, 2] -= g_conv
            system = FactorizedSystem(conductance[1:, 1:], backend=backend)
            self._factor_cache[cache_key] = system
            if len(self._factor_cache) > FACTOR_CACHE_MAX:
                self._factor_cache.popitem(last=False)
        else:
            self._factor_cache.move_to_end(cache_key)

        index = self._node_index
        rhs = np.zeros(self._n_nodes - 1)
        for block in self.floorplan:
            rhs[index[block.name] - 1] = float(
                block_power_w.get(block.name, 0.0)
            )
        # Only the sink_base row has a non-zero ambient-column entry
        # (-g_conv); every other row subtracts an exact 0.0 * ambient.
        rhs[index["sink_base"] - 1] -= (0.0 - g_conv) * float(ambient_c)
        solution = system.solve(rhs)
        block_temps = {
            b.name: float(solution[index[b.name] - 1])
            for b in self.floorplan
        }
        return DetailedChipResult(
            block_temperatures_c=block_temps,
            spreader_c=float(solution[index["spreader"] - 1]),
            sink_base_c=float(solution[index["sink_base"] - 1]),
        )

    def solve_via_network(
        self,
        ambient_c: float,
        block_power_w: Mapping[str, float],
    ) -> DetailedChipResult:
        """Reference solve that rebuilds the RC network from scratch.

        Kept as the structural ground truth the fast :meth:`solve` path
        is benchmarked and bit-compared against
        (``tests/test_thermal_detailed_model.py``,
        ``benchmarks/bench_scheduler_kernels.py``).
        """
        self._validate_powers(block_power_w)
        total_power = sum(block_power_w.values())

        network = ThermalNetwork(backend=self._backend)
        network.add_boundary("ambient", ambient_c)
        network.add_node("spreader")
        network.add_node("sink_base")
        network.connect("spreader", "sink_base", self.spreader_resistance)
        r_conv = self.sink.r_ext + self.conv_a / (total_power + self.conv_p0)
        network.connect("sink_base", "ambient", r_conv)

        for block in self.floorplan:
            network.connect(
                block.name, "spreader", self._vertical_resistance(block)
            )
            network.inject(block.name, block_power_w.get(block.name, 0.0))

        for i, a in enumerate(self.floorplan):
            for b in self.floorplan[i + 1 :]:
                edge = a.shared_edge_mm(b)
                if edge > 0:
                    network.connect(
                        a.name,
                        b.name,
                        self._lateral_resistance(a, b, edge),
                    )

        temps = network.solve()
        block_temps = {b.name: temps[b.name] for b in self.floorplan}
        return DetailedChipResult(
            block_temperatures_c=block_temps,
            spreader_c=temps["spreader"],
            sink_base_c=temps["sink_base"],
        )

    def solve_uniform(
        self, ambient_c: float, total_power_w: float
    ) -> DetailedChipResult:
        """Solve with power distributed uniformly by block area."""
        if total_power_w < 0:
            raise ThermalModelError(
                f"power must be non-negative, got {total_power_w}"
            )
        area = self.die_area_mm2
        powers = {
            b.name: total_power_w * b.area_mm2 / area for b in self.floorplan
        }
        return self.solve(ambient_c, powers)

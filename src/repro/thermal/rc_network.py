"""Generic steady-state thermal RC network solver.

A thermal network is a graph of nodes connected by thermal conductances
(W/degC).  Some nodes are *boundary* nodes held at a fixed temperature
(e.g. ambient air); the rest are free nodes with optional heat injection
(W).  Steady state solves the linear system ``G @ T = q`` restricted to
the free nodes, which is the standard nodal analysis formulation.

The detailed chip reference model (:mod:`repro.thermal.detailed_model`)
builds a die-grid network on top of this solver; it is also reusable for
ad-hoc thermal studies in downstream code.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..errors import ThermalModelError


class ThermalNetwork:
    """A steady-state thermal resistance network.

    Nodes are referenced by string names.  Conductances are symmetric;
    adding the same edge twice accumulates conductance (parallel paths).
    """

    def __init__(self) -> None:
        self._names: List[str] = []
        self._index: Dict[str, int] = {}
        self._edges: List[Tuple[int, int, float]] = []
        self._boundary: Dict[int, float] = {}
        self._injection: Dict[int, float] = {}

    def add_node(self, name: str) -> None:
        """Register a free node; idempotent for existing names."""
        if name not in self._index:
            self._index[name] = len(self._names)
            self._names.append(name)

    def add_boundary(self, name: str, temperature_c: float) -> None:
        """Register (or re-pin) a fixed-temperature boundary node."""
        self.add_node(name)
        self._boundary[self._index[name]] = float(temperature_c)

    def connect(self, a: str, b: str, resistance_c_per_w: float) -> None:
        """Connect two nodes with a thermal resistance in degC/W.

        Raises:
            ThermalModelError: if the resistance is not strictly positive
                or the edge is a self loop.
        """
        if resistance_c_per_w <= 0:
            raise ThermalModelError(
                f"resistance must be positive, got {resistance_c_per_w}"
            )
        if a == b:
            raise ThermalModelError(f"self loop on node {a!r}")
        self.add_node(a)
        self.add_node(b)
        self._edges.append(
            (self._index[a], self._index[b], 1.0 / resistance_c_per_w)
        )

    def inject(self, name: str, power_w: float) -> None:
        """Set the heat injected at a node (W); replaces prior values."""
        self.add_node(name)
        self._injection[self._index[name]] = float(power_w)

    @property
    def node_names(self) -> List[str]:
        """All registered node names in insertion order."""
        return list(self._names)

    def solve(self) -> Dict[str, float]:
        """Solve for steady-state temperatures of every node.

        Returns:
            Mapping from node name to temperature in degC (boundary nodes
            map to their pinned values).

        Raises:
            ThermalModelError: if there is no boundary node, or a free
                node is disconnected from every boundary (singular
                system).
        """
        if not self._boundary:
            raise ThermalModelError(
                "network has no boundary node; temperatures are unbounded"
            )
        n = len(self._names)
        conductance = np.zeros((n, n))
        for i, j, g in self._edges:
            conductance[i, i] += g
            conductance[j, j] += g
            conductance[i, j] -= g
            conductance[j, i] -= g

        free = [i for i in range(n) if i not in self._boundary]
        temps = np.zeros(n)
        for i, t in self._boundary.items():
            temps[i] = t
        if free:
            g_ff = conductance[np.ix_(free, free)]
            rhs = np.array(
                [self._injection.get(i, 0.0) for i in free], dtype=float
            )
            for col, t in self._boundary.items():
                rhs -= conductance[np.ix_(free, [col])].ravel() * t
            try:
                solution = np.linalg.solve(g_ff, rhs)
            except np.linalg.LinAlgError as exc:
                raise ThermalModelError(
                    "singular thermal network: a free node is not "
                    "connected to any boundary"
                ) from exc
            temps[free] = solution
        return {name: float(temps[self._index[name]]) for name in self._names}

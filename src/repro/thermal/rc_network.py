"""Generic steady-state thermal RC network solver.

A thermal network is a graph of nodes connected by thermal conductances
(W/degC).  Some nodes are *boundary* nodes held at a fixed temperature
(e.g. ambient air); the rest are free nodes with optional heat injection
(W).  Steady state solves the linear system ``G @ T = q`` restricted to
the free nodes, which is the standard nodal analysis formulation.

The solver caches its assembled conductance matrix and the LU
factorization of the free-node block, keyed on the network *structure*
(node set, edge list, and which nodes are boundaries).  Changing only
right-hand-side inputs — injected powers or boundary temperatures —
reuses the factorization, so repeated solves of the same network cost
one back-substitution instead of a full dense factorization.  Any
structural mutation (new node, new edge, newly pinned boundary)
invalidates the cache.

The detailed chip reference model (:mod:`repro.thermal.detailed_model`)
builds a die-grid network on top of this solver; it is also reusable for
ad-hoc thermal studies in downstream code.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..backend import ArrayBackend, get_backend
from ..backend import numpy_xp as np
from ..backend.numpy_backend import HAVE_SCIPY  # noqa: F401  (monkeypatchable)
from ..errors import ThermalModelError


class FactorizedSystem:
    """A dense linear system ``A @ x = b`` factorized once, solved often.

    A thin facade over :meth:`repro.backend.ArrayBackend.factorize`.
    The default numpy backend wraps scipy's LU factorization (LAPACK
    ``getrf``/``getrs``) when scipy is available, so repeated solves
    against new right-hand sides only pay the O(n^2) back-substitution;
    without scipy each solve falls back to ``np.linalg.solve`` on the
    retained matrix — correct, just not amortized.  The module-level
    ``HAVE_SCIPY`` flag is read at construction time so tests can force
    the fallback path.

    Exact singularity (a zero pivot — e.g. a free node with no path to
    any boundary) raises :class:`~repro.errors.ThermalModelError`; scipy
    merely warns and would hand back ``inf``/``nan`` temperatures.

    Raises:
        ThermalModelError: at construction (LU path) or first solve
            (fallback) if the matrix is exactly singular.
    """

    __slots__ = ("matrix", "backend", "_solver")

    def __init__(
        self, matrix: np.ndarray, backend: Optional[ArrayBackend] = None
    ) -> None:
        self.matrix = matrix
        self.backend = get_backend(backend)
        self._solver = self.backend.factorize(matrix, use_lapack=HAVE_SCIPY)

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve for ``x`` given a right-hand side ``b``.

        Raises:
            ThermalModelError: if the system is singular (fallback path;
                the LU path raises at construction instead).
        """
        return self._solver.solve(rhs)


class ThermalNetwork:
    """A steady-state thermal resistance network.

    Nodes are referenced by string names.  Conductances are symmetric;
    adding the same edge twice accumulates conductance (parallel paths).
    """

    def __init__(self, backend: Optional[ArrayBackend] = None) -> None:
        self._backend = get_backend(backend)
        self._names: List[str] = []
        self._index: Dict[str, int] = {}
        self._edges: List[Tuple[int, int, float]] = []
        self._boundary: Dict[int, float] = {}
        self._injection: Dict[int, float] = {}
        #: Structure cache: (conductance, free index list, factorized
        #: free block or None).  Dropped by any structural mutation.
        self._assembled: Optional[
            Tuple[np.ndarray, List[int], Optional[FactorizedSystem]]
        ] = None

    def add_node(self, name: str) -> None:
        """Register a free node; idempotent for existing names."""
        if name not in self._index:
            self._index[name] = len(self._names)
            self._names.append(name)
            self._assembled = None

    def add_boundary(self, name: str, temperature_c: float) -> None:
        """Register (or re-pin) a fixed-temperature boundary node.

        Re-pinning an existing boundary to a new temperature only
        changes the right-hand side and keeps the cached factorization.
        """
        self.add_node(name)
        index = self._index[name]
        if index not in self._boundary:
            self._assembled = None
        self._boundary[index] = float(temperature_c)

    def connect(self, a: str, b: str, resistance_c_per_w: float) -> None:
        """Connect two nodes with a thermal resistance in degC/W.

        Raises:
            ThermalModelError: if the resistance is not strictly positive
                or the edge is a self loop.
        """
        if resistance_c_per_w <= 0:
            raise ThermalModelError(
                f"resistance must be positive, got {resistance_c_per_w}"
            )
        if a == b:
            raise ThermalModelError(f"self loop on node {a!r}")
        self.add_node(a)
        self.add_node(b)
        self._edges.append(
            (self._index[a], self._index[b], 1.0 / resistance_c_per_w)
        )
        self._assembled = None

    def inject(self, name: str, power_w: float) -> None:
        """Set the heat injected at a node (W); replaces prior values."""
        self.add_node(name)
        self._injection[self._index[name]] = float(power_w)

    @property
    def node_names(self) -> List[str]:
        """All registered node names in insertion order."""
        return list(self._names)

    def _assemble(
        self,
    ) -> Tuple[np.ndarray, List[int], Optional[FactorizedSystem]]:
        """Assemble (or reuse) the conductance matrix and factorization."""
        if self._assembled is not None:
            return self._assembled
        n = len(self._names)
        conductance = np.zeros((n, n))
        for i, j, g in self._edges:
            conductance[i, i] += g
            conductance[j, j] += g
            conductance[i, j] -= g
            conductance[j, i] -= g
        free = [i for i in range(n) if i not in self._boundary]
        system: Optional[FactorizedSystem] = None
        if free:
            try:
                system = FactorizedSystem(
                    conductance[np.ix_(free, free)], backend=self._backend
                )
            except ThermalModelError as exc:
                raise ThermalModelError(
                    "singular thermal network: a free node is not "
                    "connected to any boundary"
                ) from exc
        self._assembled = (conductance, free, system)
        return self._assembled

    def solve(self) -> Dict[str, float]:
        """Solve for steady-state temperatures of every node.

        Returns:
            Mapping from node name to temperature in degC (boundary nodes
            map to their pinned values).

        Raises:
            ThermalModelError: if there is no boundary node, or a free
                node is disconnected from every boundary (singular
                system).
        """
        if not self._boundary:
            raise ThermalModelError(
                "network has no boundary node; temperatures are unbounded"
            )
        conductance, free, system = self._assemble()
        n = len(self._names)
        temps = np.zeros(n)
        for i, t in self._boundary.items():
            temps[i] = t
        if free:
            rhs = np.array(
                [self._injection.get(i, 0.0) for i in free], dtype=float
            )
            for col, t in self._boundary.items():
                rhs -= conductance[np.ix_(free, [col])].ravel() * t
            try:
                solution = system.solve(rhs)
            except ThermalModelError as exc:
                raise ThermalModelError(
                    "singular thermal network: a free node is not "
                    "connected to any boundary"
                ) from exc
            temps[free] = solution
        return {name: float(temps[self._index[name]]) for name in self._names}

"""Thermal substrate: heat sinks, chip temperature models, airflow, coupling.

This package implements every thermal model the paper relies on:

- :mod:`repro.thermal.heatsink` — the two M700 heat sinks (18 and 30 fin)
  with their external resistances and empirical :math:`\\theta` terms.
- :mod:`repro.thermal.chip_model` — the paper's Equation 1 simplified peak
  chip temperature model.
- :mod:`repro.thermal.detailed_model` — a multi-node RC-grid reference
  model standing in for the proprietary HotSpot-like validated model
  (used for Figures 9 and 10).
- :mod:`repro.thermal.dynamics` — two-node transient dynamics with the
  5 ms chip and 30 s socket time constants from Table III.
- :mod:`repro.thermal.airflow` — first-law airflow requirements (Table II)
  and a simple fan model.
- :mod:`repro.thermal.coupling` — the inter-socket thermal coupling chain
  (directional air heating) that replaces the Ansys Icepak CFD model.
- :mod:`repro.thermal.analytical` — the Section II-B analytical model of
  socket entry temperature (Figure 5).
"""

from .heatsink import HeatSink, FIN_18, FIN_30
from .chip_model import SimplifiedChipModel, peak_temperature
from .detailed_model import DetailedChipModel, DetailedChipResult
from .dynamics import (
    TwoNodeThermalState,
    WindowModes,
    ema_window_sum,
    exponential_step,
)
from .airflow import FanModel, airflow_table, server_airflow_requirement
from .fan_control import FanController
from .coupling import CouplingChain, CouplingMatrix
from .analytical import (
    EntryTemperatureModel,
    entry_temperature_profile,
    entry_temperature_statistics,
)

__all__ = [
    "HeatSink",
    "FIN_18",
    "FIN_30",
    "SimplifiedChipModel",
    "peak_temperature",
    "DetailedChipModel",
    "DetailedChipResult",
    "TwoNodeThermalState",
    "WindowModes",
    "ema_window_sum",
    "exponential_step",
    "FanModel",
    "FanController",
    "airflow_table",
    "server_airflow_requirement",
    "CouplingChain",
    "CouplingMatrix",
    "EntryTemperatureModel",
    "entry_temperature_profile",
    "entry_temperature_statistics",
]

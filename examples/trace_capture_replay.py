"""Xperf-style trace capture and replay (the paper's methodology).

The paper builds its job arrival model by capturing Windows Xperf traces
of PCMark runs and fitting arrival statistics to them.  This example
reproduces the pipeline on synthetic data: capture an activity trace of
one application, fit an empirical arrival model, and drive a simulation
with the replayed jobs.

Run:
    python examples/trace_capture_replay.py
"""

from repro import get_scheduler, moonshot_sut, scaled
from repro.sim.engine import Simulation
from repro.workloads.pcmark import app_by_name
from repro.workloads.traces import (
    arrival_model_from_trace,
    capture_trace,
)


def main() -> None:
    app = app_by_name("web-browsing")

    # 1. "Capture" an activity trace of the app at 40% single-socket
    #    load — busy/idle transitions like an Xperf log.
    trace = capture_trace(app, duration_s=120.0, load=0.4, seed=7)
    print(
        f"Captured {len(trace.busy_intervals_s)} busy intervals over "
        f"{trace.duration_s:.0f}s; busy fraction "
        f"{trace.busy_fraction:.2f}"
    )

    # 2. Fit an empirical job arrival model.
    model = arrival_model_from_trace(trace, app)
    print(
        f"Fitted model: mean duration {model.mean_duration_s * 1000:.1f} ms, "
        f"mean gap {model.mean_gap_s * 1000:.1f} ms"
    )

    # 3. Replay onto a server. The replay horizon and socket count are
    #    independent of the capture: generate one stream per socket.
    topology = moonshot_sut(n_rows=2)
    params = scaled(sim_time_s=12.0, warmup_s=4.0)
    jobs = []
    for socket_seed in range(topology.n_sockets):
        stream = model.generate(params.sim_time_s, seed=socket_seed)
        jobs.extend(stream)
    for job_id, job in enumerate(sorted(jobs, key=lambda j: j.arrival_s)):
        job.job_id = job_id

    result = Simulation(topology, params, get_scheduler("CP")).run(jobs)
    print(
        f"Replayed {result.n_jobs_completed} jobs on "
        f"{topology.n_sockets} sockets: mean runtime expansion "
        f"{result.mean_runtime_expansion:.4f}, utilization "
        f"{result.utilization:.2f}"
    )


if __name__ == "__main__":
    main()

"""Design-space exploration: how dense is too dense?

Uses the analytical entry-temperature model (paper Section II-B) and
the simulation engine to explore socket-organisation choices for a new
dense-server design: for each degree of thermal coupling, what entry
temperatures do downstream sockets see, and how much performance does a
coupling-aware scheduler recover?

Run:
    python examples/design_space_exploration.py
"""

from repro import BenchmarkSet, get_scheduler, run_once, scaled
from repro.analysis.capacity import (
    derating_curve,
    max_sustainable_utilization,
    throttle_onset_zone,
)
from repro.config.parameters import SimulationParameters
from repro.server.topology import ServerTopology, moonshot_sut
from repro.thermal.analytical import entry_temperature_statistics


def analytical_sweep() -> None:
    print("Analytical model: 15 W sockets at 6.35 CFM per socket")
    print("degree  mean entry (C)  max entry (C)  CoV")
    for degree in (1, 2, 3, 5, 7, 11):
        stats = entry_temperature_statistics(
            degree_of_coupling=degree, power_w=15.0, airflow_cfm=6.35
        )
        print(
            f"{degree:>6}  {stats.mean_c:>14.1f}  "
            f"{stats.max_c:>13.1f}  {stats.cov:.3f}"
        )


def simulated_sweep() -> None:
    print(
        "\nSimulated CP gain over CF at 70% Computation load, by chain"
        " length"
    )
    print("chain  sockets  CP performance vs CF")
    params = scaled(sim_time_s=14.0, warmup_s=5.0)
    for chain_length in (2, 4, 6):
        topology = ServerTopology(
            n_rows=3,
            lanes_per_row=2,
            chain_length=chain_length,
            sockets_per_cartridge_depth=2,
        )
        results = {}
        for scheme in ("CF", "CP"):
            results[scheme] = run_once(
                topology,
                params,
                get_scheduler(scheme),
                BenchmarkSet.COMPUTATION,
                load=0.7,
            )
        gain = (
            results["CP"].performance / results["CF"].performance
        )
        print(
            f"{chain_length:>5}  {topology.n_sockets:>7}  {gain:18.3f}"
        )


def capacity_planning() -> None:
    print("\nCapacity planning for the SUT (Computation workload)")
    topology = moonshot_sut(n_rows=2)
    params = SimulationParameters()
    util = max_sustainable_utilization(topology, params)
    zone, onset = throttle_onset_zone(topology, params)
    print(
        f"  max sustainable uniform utilisation: {util:.2f} "
        f"(zone {zone} throttles first, at {onset:.2f})"
    )
    print("  derating with inlet temperature:")
    for point in derating_curve(
        topology, params, inlets_c=(18.0, 25.0, 32.0, 40.0)
    ):
        print(
            f"    inlet {point.inlet_c:5.1f} C -> max utilisation "
            f"{point.max_utilization:.2f}"
        )


def main() -> None:
    analytical_sweep()
    simulated_sweep()
    capacity_planning()


if __name__ == "__main__":
    main()

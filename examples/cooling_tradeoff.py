"""Cooling-performance trade-off with dynamic fan control.

Density optimized servers share one fan bank; running it slower saves
cubic fan power but strengthens inter-socket coupling (entry-temperature
rises scale as 1/CFM), throttling downstream sockets.  This example
sweeps the fan ceiling and reports compute energy, cooling energy and
performance — the trade-off that motivates coupling-aware scheduling in
the first place.  It also shows the thermal-migration extension
rescuing long jobs stranded on throttled sockets.

Run:
    python examples/cooling_tradeoff.py
"""

from repro import BenchmarkSet, get_scheduler, moonshot_sut, scaled
from repro.core.migration import MigrationPolicy
from repro.sim.engine import Simulation
from repro.thermal.fan_control import FanController
from repro.workloads.arrivals import ArrivalProcess


def build_jobs(topology, params, load):
    return ArrivalProcess(
        benchmark_set=BenchmarkSet.COMPUTATION,
        load=load,
        n_sockets=topology.n_sockets,
        seed=0,
        duration_scale=params.duration_scale,
    ).generate(params.sim_time_s)


def fan_sweep() -> None:
    topology = moonshot_sut(n_rows=3)
    params = scaled(sim_time_s=14.0, warmup_s=5.0)
    jobs_template = build_jobs(topology, params, load=0.7)

    print("Fan ceiling sweep at 70% Computation load (CP scheduler)")
    print("max scale  perf(exp)  compute (kJ)  cooling (kJ)  max chip")
    for max_scale in (0.5, 0.75, 1.0, 1.25):
        controller = FanController(
            design_total_cfm=topology.total_airflow_cfm(),
            min_scale=0.4,
            max_scale=max_scale,
        )
        jobs = build_jobs(topology, params, load=0.7)
        result = Simulation(
            topology,
            params,
            get_scheduler("CP"),
            fan_controller=controller,
        ).run(jobs)
        print(
            f"{max_scale:>9.2f}  {result.mean_runtime_expansion:9.4f}"
            f"  {result.energy_j / 1000:12.1f}"
            f"  {result.cooling_energy_j / 1000:12.2f}"
            f"  {result.max_chip_c.max():8.1f}"
        )


def migration_demo() -> None:
    topology = moonshot_sut(n_rows=3)
    # Long jobs (100x scale) make migration worthwhile.
    params = scaled(sim_time_s=14.0, warmup_s=5.0).with_overrides(
        duration_scale=100.0
    )
    print("\nThermal migration of long jobs (CF placement, 45% load)")
    for migrator in (
        None,
        MigrationPolicy(interval_s=0.05, min_gain_mhz=300.0),
    ):
        result = Simulation(
            topology,
            params,
            get_scheduler("CF"),
            migrator=migrator,
        ).run(build_jobs(topology, params, load=0.45))
        label = "with migration" if migrator else "no migration  "
        print(
            f"  {label}: expansion {result.mean_runtime_expansion:.4f},"
            f" migrations {result.n_migrations}"
        )


def main() -> None:
    fan_sweep()
    migration_demo()


if __name__ == "__main__":
    main()

"""Writing and evaluating a custom scheduling policy.

Implements a simple "ZoneAware" policy through the public Scheduler
interface — fill even zones (better heat sinks) front to back, fall back
to odd zones — registers it, and benchmarks it against CF and CP on the
SUT.

Run:
    python examples/custom_scheduler.py
"""

import numpy as np

from repro import (
    BenchmarkSet,
    Scheduler,
    get_scheduler,
    moonshot_sut,
    register_scheduler,
    run_once,
    scaled,
)


@register_scheduler
class ZoneAware(Scheduler):
    """Prefer even zones (30-fin sinks) nearest the inlet, then odd."""

    name = "ZoneAware"

    def select_socket(self, job, idle_ids, state) -> int:
        topology = state.topology
        zones = topology.zone_array[idle_ids]
        x = topology.x_array[idle_ids]
        # Even zones first (score 0), then by distance from inlet, with
        # chip temperature as the final tie-break.
        score = (
            (zones % 2) * 1000.0
            + x * 10.0
            + 0.01 * state.chip_c[idle_ids]
        )
        return int(idle_ids[int(np.argmin(score))])


def main() -> None:
    topology = moonshot_sut(n_rows=3)
    params = scaled(sim_time_s=16.0, warmup_s=6.0)

    print("Performance vs CF on the SUT (Computation)")
    print("load    ZoneAware       CP")
    for load in (0.3, 0.6, 0.9):
        baseline = run_once(
            topology,
            params,
            get_scheduler("CF"),
            BenchmarkSet.COMPUTATION,
            load,
        )
        row = [f"{load:.0%}".ljust(6)]
        for name in ("ZoneAware", "CP"):
            result = run_once(
                topology,
                params,
                get_scheduler(name),
                BenchmarkSet.COMPUTATION,
                load,
            )
            row.append(
                f"{result.performance / baseline.performance:9.3f}"
            )
        print("  ".join(row))


if __name__ == "__main__":
    main()

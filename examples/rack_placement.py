"""Rack-level placement composed with the intra-server simulation.

Between chassis in a rack, exhaust recirculates upward — a vertical
analogue of the paper's intra-chassis coupling.  Interestingly the
winning policy differs: because a contiguous block of loaded chassis
heats itself the same way wherever it sits, concentrating load (bottom-
up OR top-down) produces the same hot intakes, and *uniform spreading*
minimises the worst intake — the rack-level Balanced analogue.  The
directional asymmetry that makes HF win inside the chassis needs idle
elements downwind of the load; at rack granularity a loaded chassis is
its own downwind victim.

The example then feeds the resulting chassis inlet into the socket-
level simulation: a 3 degC hotter intake measurably throttles the
sockets inside.

Run:
    python examples/rack_placement.py
"""

from repro import BenchmarkSet, get_scheduler, moonshot_sut, run_once, scaled
from repro.server.rack import moonshot_rack


def main() -> None:
    rack = moonshot_rack(n_chassis=8, recirculation=0.25)

    print("Chassis inlet temperatures for 4 chassis-worth of load:")
    print("policy      " + "".join(f"  c{i}" for i in range(8)) + "  worst")
    for policy in ("bottom-up", "uniform", "top-down"):
        inlets = rack.inlets_for_load(4.0, policy)
        cells = "".join(f"{t:5.1f}" for t in inlets)
        print(f"{policy:10s} {cells}  {inlets.max():5.1f} C")

    # Feed the worst-case chassis inlet into the socket-level model.
    print(
        "\nIntra-server effect of rack placement (CP, 70% Computation "
        "load):"
    )
    topology = moonshot_sut(n_rows=3)
    params = scaled(sim_time_s=14.0, warmup_s=5.0)
    for policy in ("bottom-up", "uniform"):
        inlet = float(rack.inlets_for_load(4.0, policy).max())
        result = run_once(
            topology,
            params.with_overrides(inlet_c=inlet),
            get_scheduler("CP"),
            BenchmarkSet.COMPUTATION,
            0.7,
        )
        print(
            f"  {policy:10s}: hottest chassis inlet {inlet:5.1f} C -> "
            f"expansion {result.mean_runtime_expansion:.4f}, "
            f"max chip {result.max_chip_c.max():.1f} C"
        )


if __name__ == "__main__":
    main()

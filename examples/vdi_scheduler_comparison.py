"""VDI scheduler comparison: the paper's headline experiment, condensed.

Sweeps every registered scheduling policy over low / medium / high load
for the three VDI workload sets (Computation, GP, Storage) on the dense
SUT, and prints performance relative to the Coolest First baseline —
a condensed Figure 14.

Run:
    python examples/vdi_scheduler_comparison.py          # scaled demo
    REPRO_ROWS=15 python examples/vdi_scheduler_comparison.py  # full SUT
"""

import os

from repro import (
    BenchmarkSet,
    all_scheduler_names,
    get_scheduler,
    moonshot_sut,
    relative_performance,
    run_once,
    scaled,
)

LOADS = (0.2, 0.5, 0.8)


def main() -> None:
    n_rows = int(os.environ.get("REPRO_ROWS", "3"))
    topology = moonshot_sut(n_rows=n_rows)
    params = scaled(sim_time_s=16.0, warmup_s=6.0)
    schemes = all_scheduler_names()

    for benchmark_set in (
        BenchmarkSet.COMPUTATION,
        BenchmarkSet.GENERAL_PURPOSE,
        BenchmarkSet.STORAGE,
    ):
        print(f"\n=== {benchmark_set.value} — performance vs CF ===")
        header = "scheme".ljust(12) + "".join(
            f"{load:>8.0%}" for load in LOADS
        )
        print(header)
        baselines = {
            load: run_once(
                topology,
                params,
                get_scheduler("CF"),
                benchmark_set,
                load,
            )
            for load in LOADS
        }
        for name in schemes:
            cells = []
            for load in LOADS:
                if name == "CF":
                    cells.append(1.0)
                    continue
                result = run_once(
                    topology,
                    params,
                    get_scheduler(name),
                    benchmark_set,
                    load,
                )
                cells.append(
                    relative_performance(result, baselines[load])
                )
            print(
                name.ljust(12)
                + "".join(f"{value:8.3f}" for value in cells)
            )


if __name__ == "__main__":
    main()

"""Quickstart: simulate a dense server and compare two schedulers.

Builds a scaled-down Moonshot-M700-like system under test (SUT), offers
it a 50% Computation load, and compares the classic Coolest First
scheduler against the paper's CouplingPredictor.

Run:
    python examples/quickstart.py
"""

from repro import (
    BenchmarkSet,
    get_scheduler,
    moonshot_sut,
    run_once,
    scaled,
    zone_report,
)


def main() -> None:
    # A 5-row slice of the 15-row SUT: 60 sockets, 3 cartridges deep,
    # alternating 18-/30-fin heat sinks, shared directional airflow.
    topology = moonshot_sut(n_rows=5)
    print(
        f"SUT: {topology.n_sockets} sockets, "
        f"{topology.n_zones} zones, "
        f"{topology.total_airflow_cfm():.0f} CFM total airflow"
    )

    # Scaled simulation parameters (see repro.config.presets for how
    # the paper's 30-minute runs are compressed while preserving the
    # thermal regime).
    params = scaled(sim_time_s=20.0, warmup_s=7.0)

    for name in ("CF", "CP"):
        result = run_once(
            topology,
            params,
            get_scheduler(name),
            BenchmarkSet.COMPUTATION,
            load=0.5,
        )
        zones = zone_report(result)
        print(
            f"\n{name}: {result.n_jobs_completed} jobs, "
            f"mean runtime expansion {result.mean_runtime_expansion:.4f}"
        )
        print(
            f"  avg relative frequency {result.average_relative_frequency():.3f}, "
            f"utilization {result.utilization:.2f}, "
            f"avg power {result.average_power_w:.0f} W"
        )
        print(
            f"  front/back work split {zones.front_work:.2f}/"
            f"{zones.back_work:.2f}, "
            f"front/back frequency {zones.front_freq:.3f}/"
            f"{zones.back_freq:.3f}"
        )


if __name__ == "__main__":
    main()

"""Thermal timeline: watch the server heat up through a load ramp.

Combines three library features — time-varying load profiles, engine
tracing, and the terminal charts — to visualise what the paper
describes: as load ramps up, the back zones heat first and hardest,
and the average operating frequency sags.

Run:
    python examples/thermal_timeline.py
"""

import numpy as np

from repro import BenchmarkSet, get_scheduler, moonshot_sut, scaled
from repro.sim.engine import Simulation
from repro.sim.tracing import TraceConfig
from repro.viz import line_chart, sparkline
from repro.workloads.load_profile import VaryingLoadProcess, ramp_profile


def main() -> None:
    topology = moonshot_sut(n_rows=3)
    params = scaled(sim_time_s=18.0, warmup_s=1.0).with_overrides(
        warm_start=False
    )
    phases = ramp_profile(
        0.1, 0.9, steps=4, total_duration_s=params.sim_time_s
    )
    stream = VaryingLoadProcess(
        benchmark_set=BenchmarkSet.COMPUTATION,
        phases=phases,
        n_sockets=topology.n_sockets,
        seed=0,
        duration_scale=params.duration_scale,
    )
    result = Simulation(
        topology,
        params,
        get_scheduler("CP"),
        trace_config=TraceConfig(interval_s=0.2),
    ).run(stream.generate())

    arrays = result.trace.as_arrays()
    zones = arrays["zone_chip_c"]
    print("Load ramp 10% -> 90% under CP\n")
    print("Zone mean chip temperature over time (z1 front, z6 back):")
    print(
        line_chart(
            {
                "1-front": zones[:, 0],
                "6-back": zones[:, -1],
            },
            height=10,
        )
    )
    print("\nUtilization:        " + sparkline(arrays["utilization"]))
    print("Max chip temp:      " + sparkline(arrays["max_chip_c"]))
    rel = np.nan_to_num(arrays["mean_rel_frequency"], nan=1.0)
    print("Mean rel frequency: " + sparkline(rel))
    print(
        f"\nFinal zone temperatures: "
        + ", ".join(
            f"z{i + 1}={t:.0f}C" for i, t in enumerate(zones[-1])
        )
    )


if __name__ == "__main__":
    main()
